/**
 * @file
 * Reproduces Fig. 8: load-balancing validation.  An NGINX proxy
 * round-robins requests over 4/8/16 single-worker webservers.
 *
 * Expected shape (paper §IV-B): saturation scales linearly from
 * ~35 kQPS (4 servers) to ~70 kQPS (8), and sub-linearly beyond
 * that (~120 kQPS at 16) because the cores handling network
 * interrupts (soft-irq) saturate before the NGINX instances.
 */

#include "bench_util.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

namespace {

SweepCurve
sweepScaleOut(int web_servers, double hi_qps, int points)
{
    return bench::parallelSweep(
        "lb" + std::to_string(web_servers),
        linspace(hi_qps / points, hi_qps, points),
        [&](double qps, std::uint64_t seed) {
            models::LoadBalancerParams params;
            params.run.qps = qps;
            params.run.seed = seed;
            params.run.warmupSeconds = 0.4;
            params.run.durationSeconds = 1.6;
            params.webServers = web_servers;
            return Simulation::fromBundle(
                models::loadBalancerBundle(params));
        });
}

}  // namespace

int
main()
{
    bench::banner("Fig. 8", "NGINX load-balancing validation "
                            "(p99 latency vs load, scale-out 4/8/16)");
    const SweepCurve lb4 = sweepScaleOut(4, 48000.0, 6);
    const SweepCurve lb8 = sweepScaleOut(8, 96000.0, 6);
    const SweepCurve lb16 = sweepScaleOut(16, 160000.0, 8);
    bench::printCurves({lb4, lb8, lb16});

    bench::paperNote(
        "saturation 35 kQPS (x4), 70 kQPS (x8), ~120 kQPS (x16, "
        "sub-linear: soft-irq cores saturate first).");
    std::printf("shape check: sat8/sat4 = %.2f (expect ~2.0), "
                "sat16/sat8 = %.2f (expect < 2.0, irq-bound)\n",
                lb8.saturationQps() / lb4.saturationQps(),
                lb16.saturationQps() / lb8.saturationQps());
    return 0;
}
