/**
 * @file
 * Reproduces Fig. 6: load-latency validation of the 3-tier
 * NGINX-memcached-MongoDB application.
 *
 * Expected shape (paper §IV-A): the application is bottlenecked by
 * MongoDB's disk I/O bandwidth, so it saturates far below the 2-tier
 * system, and scaling the downstream microservices does not help.
 */

#include "bench_util.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

namespace {

SweepCurve
sweepMissRate(const std::string& label, double miss_rate,
              double hi_qps)
{
    return bench::parallelSweep(
        label, linspace(hi_qps / 8.0, hi_qps, 8),
        [&](double qps, std::uint64_t seed) {
            models::ThreeTierParams params;
            params.run.qps = qps;
            params.run.seed = seed;
            params.run.warmupSeconds = 0.4;
            params.run.durationSeconds = 2.4;
            params.missRate = miss_rate;
            return Simulation::fromBundle(
                models::threeTierBundle(params));
        });
}

}  // namespace

int
main()
{
    bench::banner(
        "Fig. 6",
        "3-tier NGINX-memcached-MongoDB load-latency validation");
    const SweepCurve base = sweepMissRate("miss10", 0.10, 8000.0);
    bench::printCurves({base});

    bench::paperNote(
        "simulated means within 1.55 ms and tails within 2.32 ms of "
        "the real 3-tier system; disk-bound saturation well below the "
        "2-tier knee (~74 kQPS in our calibration).");

    // Disk-bound check: halving the miss rate roughly doubles the
    // saturation point, confirming MongoDB's disk as the bottleneck.
    const SweepCurve lighter = sweepMissRate("miss05", 0.05, 16000.0);
    std::printf(
        "shape check: sat(miss=5%%)/sat(miss=10%%) = %.2f "
        "(expect ~2 if disk-bound)\n",
        lighter.saturationQps() / base.saturationQps());
    return 0;
}
