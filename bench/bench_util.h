#ifndef UQSIM_BENCH_BENCH_UTIL_H_
#define UQSIM_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared helpers for the figure-reproduction benches: banner and
 * reference-anchor printing so every bench reports simulated series
 * next to what the paper states.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "uqsim/core/sim/sweep.h"

namespace uqsim {
namespace bench {

inline void
banner(const std::string& figure, const std::string& description)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure.c_str(), description.c_str());
    std::printf("==============================================================\n");
}

inline void
paperNote(const std::string& note)
{
    std::printf("paper: %s\n", note.c_str());
}

inline void
printCurves(const std::vector<SweepCurve>& curves)
{
    std::fputs(formatSweepTable(curves).c_str(), stdout);
    for (const SweepCurve& curve : curves) {
        std::printf(
            "%s: saturation ~%.0f qps, p99 before saturation %.3f ms\n",
            curve.label.c_str(), curve.saturationQps(),
            curve.tailBeforeSaturationMs());
    }
}

}  // namespace bench
}  // namespace uqsim

#endif  // UQSIM_BENCH_BENCH_UTIL_H_
