#ifndef UQSIM_BENCH_BENCH_UTIL_H_
#define UQSIM_BENCH_BENCH_UTIL_H_

/**
 * @file
 * Shared helpers for the figure-reproduction benches: banner and
 * reference-anchor printing so every bench reports simulated series
 * next to what the paper states.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "uqsim/core/sim/sweep.h"
#include "uqsim/runner/sweep_runner.h"

namespace uqsim {
namespace bench {

/**
 * Worker threads for figure sweeps: $UQSIM_BENCH_JOBS when set,
 * otherwise all hardware threads (runner convention: 0).
 */
inline int
benchJobs()
{
    if (const char* env = std::getenv("UQSIM_BENCH_JOBS"))
        return std::atoi(env);
    return 0;
}

/**
 * Runs one load sweep on the parallel SweepRunner (benchJobs()
 * workers) and collapses it to the SweepCurve the print helpers
 * consume.  The factory receives the per-replication seed; with the
 * default single replication the results are bitwise identical to
 * the serial runLoadSweep of a factory baking in @p base_seed.
 */
inline SweepCurve
parallelSweep(const std::string& label, const std::vector<double>& loads,
              const runner::ReplicatedFactory& factory,
              int replications = 1, std::uint64_t base_seed = 1)
{
    runner::RunnerOptions options;
    options.jobs = benchJobs();
    options.replications = replications;
    options.baseSeed = base_seed;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep(label, loads, factory);
    return sweep_runner.run().front().toSweepCurve();
}

inline void
banner(const std::string& figure, const std::string& description)
{
    std::printf("==============================================================\n");
    std::printf("%s — %s\n", figure.c_str(), description.c_str());
    std::printf("==============================================================\n");
}

inline void
paperNote(const std::string& note)
{
    std::printf("paper: %s\n", note.c_str());
}

inline void
printCurves(const std::vector<SweepCurve>& curves)
{
    std::fputs(formatSweepTable(curves).c_str(), stdout);
    for (const SweepCurve& curve : curves) {
        std::printf(
            "%s: saturation ~%.0f qps, p99 before saturation %.3f ms\n",
            curve.label.c_str(), curve.saturationQps(),
            curve.tailBeforeSaturationMs());
    }
}

}  // namespace bench
}  // namespace uqsim

#endif  // UQSIM_BENCH_BENCH_UTIL_H_
