/**
 * @file
 * Engine throughput benchmark: the perf trajectory for the
 * discrete-event hot path.
 *
 * Three workloads, each repeated --reps times (median reported):
 *
 *  - churn          raw Simulator schedule/fire/cancel churn: a ring
 *                   of self-rescheduling events plus timeout events
 *                   that are almost always cancelled (the
 *                   cancellation-heavy pattern client timeouts
 *                   produce).
 *  - replay_fanout  the Fig. 14 tail-at-scale fan-out replay (100
 *                   leaf servers, 1% slow), end to end through
 *                   dispatcher, network, IRQ, and instances.
 *  - replay_two_tier the Fig. 5 NGINX-memcached system at 20 kQPS.
 *
 * Each replay also prints its trace digest so engine changes can be
 * checked for bit-exact determinism against a previous build.
 * Results are written as JSON (default BENCH_engine.json) so CI can
 * compare events/sec against the committed baseline.
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/json/json_value.h"
#include "uqsim/json/json_writer.h"
#include "uqsim/models/applications.h"

namespace {

using uqsim::json::JsonValue;

double
median(std::vector<double> values)
{
    std::sort(values.begin(), values.end());
    return values[values.size() / 2];
}

struct SectionResult {
    std::string name;
    std::uint64_t events = 0;
    double wallSeconds = 0.0;
    double eventsPerSec = 0.0;
    std::uint64_t digest = 0;
};

/** Raw engine churn: self-rescheduling ring + mostly-cancelled
 *  timeouts, the two dominant event patterns in a simulation. */
SectionResult
runChurn(int rounds)
{
    using Clock = std::chrono::steady_clock;
    uqsim::Simulator sim(99);
    constexpr int kRing = 256;
    constexpr uqsim::SimTime kStep = 1000;
    std::uint64_t fires = 0;
    std::uint64_t cancels = 0;
    uqsim::EventHandle timeout;
    const std::uint64_t max_events =
        static_cast<std::uint64_t>(rounds) * 1000000ULL;
    std::function<void()> tick;
    tick = [&sim, &fires, &timeout, &cancels, &tick]() {
        ++fires;
        // Arm a far-future timeout and immediately cancel the
        // previous one: the client-timeout pattern.
        if (timeout.cancel())
            ++cancels;
        timeout =
            sim.scheduleAfter(kStep * 1000, []() {}, "churn/timeout");
        sim.scheduleAfter(kStep, tick, "churn/tick");
    };
    for (int i = 0; i < kRing; ++i) {
        sim.scheduleAt(static_cast<uqsim::SimTime>(i), tick,
                       "churn/seed");
    }
    const auto start = Clock::now();
    sim.run(uqsim::kSimTimeMax, max_events);
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    SectionResult result;
    result.name = "churn";
    result.events = sim.executedEvents();
    result.wallSeconds = wall;
    result.eventsPerSec = static_cast<double>(result.events) / wall;
    result.digest = sim.traceDigest();
    return result;
}

SectionResult
runReplay(const std::string& name, const uqsim::ConfigBundle& bundle)
{
    using Clock = std::chrono::steady_clock;
    auto simulation = uqsim::Simulation::fromBundle(bundle);
    const auto start = Clock::now();
    const uqsim::RunReport report = simulation->run();
    const double wall =
        std::chrono::duration<double>(Clock::now() - start).count();
    SectionResult result;
    result.name = name;
    result.events = report.events;
    result.wallSeconds = wall;
    result.eventsPerSec = static_cast<double>(report.events) / wall;
    result.digest = simulation->sim().traceDigest();
    return result;
}

uqsim::ConfigBundle
fanoutBundle()
{
    uqsim::models::TailAtScaleParams params;
    params.run.qps = 120.0;
    params.run.seed = 1714;
    params.run.warmupSeconds = 0.25;
    params.run.durationSeconds = 2.0;
    params.run.clientConnections = 64;
    params.clusterSize = 100;
    params.slowFraction = 0.01;
    return uqsim::models::tailAtScaleBundle(params);
}

uqsim::ConfigBundle
twoTierBundle()
{
    uqsim::models::TwoTierParams params;
    params.run.qps = 20000.0;
    params.run.seed = 42;
    params.run.warmupSeconds = 0.25;
    params.run.durationSeconds = 2.0;
    return uqsim::models::twoTierBundle(params);
}

SectionResult
best(std::vector<SectionResult> reps)
{
    std::vector<double> rates;
    rates.reserve(reps.size());
    for (const SectionResult& rep : reps)
        rates.push_back(rep.eventsPerSec);
    SectionResult result = reps.front();
    for (const SectionResult& rep : reps) {
        if (rep.digest != result.digest || rep.events != result.events) {
            std::fprintf(stderr,
                         "FATAL: %s not deterministic across reps\n",
                         result.name.c_str());
            std::exit(1);
        }
    }
    result.eventsPerSec = median(rates);
    result.wallSeconds =
        static_cast<double>(result.events) / result.eventsPerSec;
    return result;
}

}  // namespace

int
main(int argc, char** argv)
{
    int reps = 5;
    int churn_rounds = 4;
    std::string out = "BENCH_engine.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
            reps = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out = argv[++i];
        } else if (std::strcmp(argv[i], "--quick") == 0) {
            reps = 2;
            churn_rounds = 1;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--reps N] [--out FILE] [--quick]\n",
                         argv[0]);
            return 2;
        }
    }
    if (reps < 1)
        reps = 1;

    std::vector<SectionResult> sections;
    struct Spec {
        const char* name;
        std::function<SectionResult()> run;
    };
    const Spec specs[] = {
        {"churn", [&]() { return runChurn(churn_rounds); }},
        {"replay_fanout",
         []() { return runReplay("replay_fanout", fanoutBundle()); }},
        {"replay_two_tier",
         []() { return runReplay("replay_two_tier", twoTierBundle()); }},
    };
    for (const Spec& spec : specs) {
        std::vector<SectionResult> rep_results;
        for (int r = 0; r < reps; ++r)
            rep_results.push_back(spec.run());
        const SectionResult section = best(std::move(rep_results));
        std::printf(
            "%-18s %10llu events  %8.3f s  %12.0f events/s  "
            "digest %016llx\n",
            section.name.c_str(),
            static_cast<unsigned long long>(section.events),
            section.wallSeconds, section.eventsPerSec,
            static_cast<unsigned long long>(section.digest));
        sections.push_back(section);
    }

    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["schema"] = "uqsim-bench-engine-v1";
    doc.asObject()["reps"] = reps;
    JsonValue list = JsonValue::makeArray();
    for (const SectionResult& section : sections) {
        JsonValue entry = JsonValue::makeObject();
        entry.asObject()["name"] = section.name;
        entry.asObject()["events"] = section.events;
        entry.asObject()["wall_s"] = section.wallSeconds;
        entry.asObject()["events_per_sec"] = section.eventsPerSec;
        char digest[32];
        std::snprintf(digest, sizeof(digest), "%016llx",
                      static_cast<unsigned long long>(section.digest));
        entry.asObject()["trace_digest"] = digest;
        list.asArray().push_back(std::move(entry));
    }
    doc.asObject()["sections"] = std::move(list);
    std::ofstream file(out);
    file << uqsim::json::writePretty(doc) << "\n";
    if (!file) {
        std::fprintf(stderr, "failed to write %s\n", out.c_str());
        return 1;
    }
    std::printf("wrote %s\n", out.c_str());
    return 0;
}
