/**
 * @file
 * Reproduces Fig. 15 (diurnal load), Fig. 16 (tail latency and
 * per-tier frequency under the QoS-aware power manager), and
 * Table III (QoS violation rates vs decision interval) — paper §V-B.
 *
 * The 2-tier NGINX-memcached application runs under a diurnal load
 * while Algorithm 1 adjusts each tier's DVFS setting every decision
 * interval, targeting a 5 ms end-to-end p99.  The "real" rows use
 * the real-proxy noise mode (timeouts/OS jitter the simulator
 * otherwise omits), which the paper reports as slightly noisier and
 * with slightly higher violation rates.
 */

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "uqsim/models/applications.h"
#include "uqsim/power/energy_model.h"
#include "uqsim/power/power_manager.h"
#include "uqsim/workload/load_pattern.h"

using namespace uqsim;

namespace {

struct PowerRunResult {
    double violationRate = 0.0;
    double meanFrontGhz = 0.0;
    double meanBackGhz = 0.0;
    double energySavings = 0.0;
    stats::TimeSeries tail{"tail"};
    stats::TimeSeries frontFreq{"front"};
    stats::TimeSeries backFreq{"back"};
};

PowerRunResult
runPowerManaged(double interval_s, bool real_proxy, double duration_s)
{
    models::PowerTwoTierParams params;
    params.run.seed = 7;
    params.run.warmupSeconds = 1.0;
    params.run.durationSeconds = duration_s;
    params.run.realProxyNoise = real_proxy;
    params.baseQps = 9000.0;
    params.amplitudeQps = 7000.0;
    params.periodSeconds = 60.0;
    auto simulation =
        Simulation::fromBundle(models::powerTwoTierBundle(params));

    power::PowerManagerConfig config;
    config.intervalSeconds = interval_s;
    config.qosTargetSeconds = 5e-3;
    power::PowerManager manager(
        simulation->sim(), config,
        {{"nginx",
          {simulation->deployment().instance("nginx", 0).dvfs()}},
         {"memcached",
          {simulation->deployment()
               .instance("memcached", 0)
               .dvfs()}}});
    simulation->setCompletionListener(
        [&](const Job&, double seconds) {
            manager.noteEndToEnd(seconds);
        });
    simulation->setTierListener(
        [&](const std::string& service, double seconds) {
            manager.noteTierLatency(service, seconds);
        });
    power::EnergyTracker front_energy(
        simulation->sim(),
        *simulation->deployment().instance("nginx", 0).dvfs(), 2);
    power::EnergyTracker back_energy(
        simulation->sim(),
        *simulation->deployment().instance("memcached", 0).dvfs(), 2);
    manager.start();
    simulation->run();

    PowerRunResult result;
    result.violationRate = manager.violationRate();
    result.meanFrontGhz =
        manager.frequencySeries("nginx").meanOver(0.0, duration_s);
    result.meanBackGhz =
        manager.frequencySeries("memcached")
            .meanOver(0.0, duration_s);
    result.energySavings = (front_energy.savingsFraction() +
                            back_energy.savingsFraction()) /
                           2.0;
    result.tail = manager.tailSeries();
    result.frontFreq = manager.frequencySeries("nginx");
    result.backFreq = manager.frequencySeries("memcached");
    return result;
}

void
printSampledSeries(const stats::TimeSeries& series, double step,
                   double duration, const char* unit)
{
    std::printf("  t(s):");
    for (double t = step; t <= duration; t += step)
        std::printf(" %7.0f", t);
    std::printf("\n  %-4s:", unit);
    for (double t = step; t <= duration; t += step)
        std::printf(" %7.2f", series.valueAt(t));
    std::printf("\n");
}

}  // namespace

int
main()
{
    const double duration = 360.0;

    // ---------------- Fig. 15: diurnal load ----------------
    bench::banner("Fig. 15", "diurnal input load (offered QPS vs time)");
    workload::DiurnalLoad diurnal(9000.0, 7000.0, 60.0);
    // Two 60 s periods are enough to see the shape.
    std::printf("  t(s):");
    for (double t = 0.0; t <= 120.0; t += 10.0)
        std::printf(" %7.0f", t);
    std::printf("\n  kqps:");
    for (double t = 0.0; t <= 120.0; t += 10.0)
        std::printf(" %7.2f", diurnal.rateAt(t) / 1000.0);
    std::printf("\n\n");

    // -------------- Fig. 16 + Table III -------------------
    bench::banner("Fig. 16 / Table III",
                  "QoS-aware power management (Algorithm 1), "
                  "5 ms p99 target, diurnal load");
    const std::vector<double> intervals = {0.1, 0.5, 1.0};
    std::vector<PowerRunResult> simulated, real;
    for (double interval : intervals) {
        simulated.push_back(
            runPowerManaged(interval, false, duration));
        real.push_back(runPowerManaged(interval, true, duration));
    }

    std::printf("\nFig. 16 series (decision interval 0.5 s, simulated "
                "system), sampled every 20 s:\n");
    std::printf(" end-to-end p99 (ms):\n");
    printSampledSeries(simulated[1].tail, 20.0, duration, "ms");
    std::printf(" nginx frequency (GHz):\n");
    printSampledSeries(simulated[1].frontFreq, 20.0, duration, "GHz");
    std::printf(" memcached frequency (GHz):\n");
    printSampledSeries(simulated[1].backFreq, 20.0, duration, "GHz");

    std::printf("\nTable III: QoS violation rates\n");
    std::printf("%-18s", "Decision interval");
    for (double interval : intervals)
        std::printf(" %7.1fs", interval);
    std::printf("\n%-18s", "Simulated system");
    for (std::size_t i = 0; i < intervals.size(); ++i)
        std::printf(" %7.1f%%", simulated[i].violationRate * 100.0);
    std::printf("\n%-18s", "Real(-proxy)");
    for (std::size_t i = 0; i < intervals.size(); ++i)
        std::printf(" %7.1f%%", real[i].violationRate * 100.0);
    std::printf("\n");

    std::printf("\nEnergy (simulated, cubic DVFS power model):\n");
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        std::printf("  interval %.1fs: mean freq nginx %.2f GHz, "
                    "memcached %.2f GHz, energy saved %.0f%%\n",
                    intervals[i], simulated[i].meanFrontGhz,
                    simulated[i].meanBackGhz,
                    simulated[i].energySavings * 100.0);
    }

    bench::paperNote(
        "Table III reports 0.6/2.2/5.0% violations (simulated) and "
        "1.5/2.7/6.0% (real) for 0.1/0.5/1.0 s intervals: shorter "
        "intervals react faster and violate less; the real system is "
        "slightly noisier.  Tail latency converges near 2 ms despite "
        "the 5 ms target because discrete DVFS steps quantize the "
        "achievable latency.");
    return 0;
}
