/**
 * @file
 * Engine microbenchmarks (google-benchmark): event queue operations,
 * raw event dispatch rate, RNG and distribution sampling, percentile
 * recording, and an end-to-end M/M/1 events/second figure — the
 * "simulation speed" numbers a simulator release reports.
 */

#include <benchmark/benchmark.h>

#include <memory>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/random/distributions.h"
#include "uqsim/stats/percentile_recorder.h"

namespace {

using namespace uqsim;

void
BM_EventQueueScheduleAndPop(benchmark::State& state)
{
    const int batch = static_cast<int>(state.range(0));
    random::Rng rng(1);
    for (auto _ : state) {
        EventQueue queue;
        for (int i = 0; i < batch; ++i) {
            queue.schedule(
                static_cast<SimTime>(rng.nextBounded(1000000)),
                [] {});
        }
        while (!queue.empty()) {
            EventQueue::FiredEvent event = queue.pop();
            benchmark::DoNotOptimize(event.when());
        }
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(65536);

void
BM_EventQueueCancelHeavy(benchmark::State& state)
{
    // Timeout churn: schedule far-future events and cancel 99% of
    // them — the pattern client/hop timeouts produce.  Exercises the
    // O(log n) interior removal and slot recycling.
    const int batch = static_cast<int>(state.range(0));
    random::Rng rng(3);
    for (auto _ : state) {
        EventQueue queue;
        for (int i = 0; i < batch; ++i) {
            EventHandle handle = queue.schedule(
                static_cast<SimTime>(1000000 +
                                     rng.nextBounded(1000000)),
                [] {});
            if (i % 100 != 0)
                handle.cancel();
        }
        while (!queue.empty()) {
            EventQueue::FiredEvent event = queue.pop();
            benchmark::DoNotOptimize(event.when());
        }
    }
    state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(65536);

void
BM_SimulatorSelfSchedulingEvent(benchmark::State& state)
{
    // One event that perpetually reschedules itself: measures the
    // end-to-end cost per executed event.
    for (auto _ : state) {
        state.PauseTiming();
        Simulator sim;
        std::function<void()> tick = [&] {
            sim.scheduleAfter(1000, tick);
        };
        sim.scheduleAt(0, tick);
        state.ResumeTiming();
        sim.run(kSimTimeMax, 100000);
        benchmark::DoNotOptimize(sim.now());
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_SimulatorSelfSchedulingEvent);

void
BM_RngNextDouble(benchmark::State& state)
{
    random::Rng rng(7);
    double acc = 0.0;
    for (auto _ : state)
        acc += rng.nextDouble();
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngNextDouble);

void
BM_ExponentialSample(benchmark::State& state)
{
    random::Rng rng(7);
    random::ExponentialDistribution dist(1e-3);
    double acc = 0.0;
    for (auto _ : state)
        acc += dist.sample(rng);
    benchmark::DoNotOptimize(acc);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExponentialSample);

void
BM_PercentileRecorder(benchmark::State& state)
{
    const int samples = static_cast<int>(state.range(0));
    random::Rng rng(7);
    for (auto _ : state) {
        stats::PercentileRecorder recorder;
        for (int i = 0; i < samples; ++i)
            recorder.add(rng.nextDouble());
        benchmark::DoNotOptimize(recorder.p99());
    }
    state.SetItemsProcessed(state.iterations() * samples);
}
BENCHMARK(BM_PercentileRecorder)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
