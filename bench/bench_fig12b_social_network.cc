/**
 * @file
 * Reproduces Fig. 12b: end-to-end social network validation
 * (Fig. 11 architecture: Thrift front-end, User/Post/Media services,
 * each backed by memcached and — for posts — MongoDB, with fan-out,
 * synchronization, and Thrift RPC between all tiers).
 *
 * Expected shape (paper §IV-D): at low load the simulator closely
 * matches the real application's latency; at high load it saturates
 * at a similar throughput.
 */

#include "bench_util.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

int
main()
{
    bench::banner("Fig. 12b", "Social network end-to-end validation");
    const SweepCurve curve = bench::parallelSweep(
        "social", linspace(1000.0, 10000.0, 7),
        [&](double qps, std::uint64_t seed) {
            models::SocialNetworkParams params;
            params.run.qps = qps;
            params.run.seed = seed;
            params.run.warmupSeconds = 0.4;
            params.run.durationSeconds = 1.9;
            return Simulation::fromBundle(
                models::socialNetworkBundle(params));
        });
    bench::printCurves({curve});

    bench::paperNote(
        "µqSim closely matches real latency at low load and saturates "
        "at a similar throughput; the app exercises fan-out, "
        "synchronization, and blocking simultaneously.");
    std::printf("per-tier mean latency at %0.f qps:\n",
                curve.points[1].offeredQps);
    for (const auto& [tier, stats] :
         curve.points[1].report.tiers) {
        std::printf("  %-14s %8.3f ms (p99 %8.3f ms)\n", tier.c_str(),
                    stats.meanMs, stats.p99Ms);
    }
    return 0;
}
