/**
 * @file
 * Reproduces Fig. 12a: Apache Thrift RPC validation.  A Thrift
 * client/server pair where the server replies "Hello World" — all
 * time goes to RPC processing.
 *
 * Expected shape (paper §IV-C): saturation just beyond 50 kQPS,
 * low-load latency under 100 us.  Past saturation the real system
 * rises faster than the simulator (timeout/reconnect overheads the
 * simulator does not model); our real-proxy noise mode reproduces
 * that qualitative gap.
 */

#include "bench_util.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

namespace {

SweepCurve
sweepThrift(const std::string& label, bool real_proxy)
{
    return bench::parallelSweep(
        label, linspace(10000.0, 75000.0, 8),
        [&](double qps, std::uint64_t seed) {
            models::ThriftEchoParams params;
            params.run.qps = qps;
            params.run.seed = seed;
            params.run.warmupSeconds = 0.4;
            params.run.durationSeconds = 1.9;
            params.run.realProxyNoise = real_proxy;
            return Simulation::fromBundle(
                models::thriftEchoBundle(params));
        });
}

}  // namespace

int
main()
{
    bench::banner("Fig. 12a",
                  "Apache Thrift echo RPC validation (latency vs load)");
    const SweepCurve sim = sweepThrift("uqsim", false);
    const SweepCurve real = sweepThrift("real-proxy", true);
    bench::printCurves({sim, real});

    bench::paperNote(
        "server saturates beyond 50 kQPS; low-load latency does not "
        "exceed 100 us; beyond saturation the real system's latency "
        "rises faster than the simulator's.");
    std::printf("shape check: low-load mean %.1f us (expect < 100), "
                "saturation ~%.0f qps (expect > 50000)\n",
                sim.points[0].report.endToEnd.meanMs * 1e3,
                sim.saturationQps());
    return 0;
}
