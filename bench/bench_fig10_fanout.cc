/**
 * @file
 * Reproduces Fig. 10: request fan-out validation.  The proxy
 * forwards each request to all N webservers (1 core / 1 thread
 * each), and the response returns only after every leaf responds.
 *
 * Expected shape (paper §IV-B): all fan-out factors saturate near
 * the single-leaf capacity (every leaf serves every request), with a
 * small decrease in saturation load as fan-out grows because the
 * probability that one slow leaf delays the request rises.
 */

#include "bench_util.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

namespace {

SweepCurve
sweepFanout(int fanout)
{
    return bench::parallelSweep(
        "fanout" + std::to_string(fanout),
        linspace(1500.0, 10500.0, 7),
        [&](double qps, std::uint64_t seed) {
            models::FanoutParams params;
            params.run.qps = qps;
            params.run.seed = seed;
            params.run.warmupSeconds = 0.4;
            params.run.durationSeconds = 1.6;
            params.fanout = fanout;
            return Simulation::fromBundle(
                models::fanoutBundle(params));
        });
}

}  // namespace

int
main()
{
    bench::banner("Fig. 10",
                  "NGINX request fan-out validation (p99 vs load, "
                  "fan-out 4/8/16)");
    const SweepCurve f4 = sweepFanout(4);
    const SweepCurve f8 = sweepFanout(8);
    const SweepCurve f16 = sweepFanout(16);
    bench::printCurves({f4, f8, f16});

    bench::paperNote(
        "tail latency and saturation reproduced for all fan-outs; as "
        "fan-out increases, saturation decreases slightly (one slow "
        "leaf degrades the end-to-end tail).");
    std::printf("shape check: sat(f16) <= sat(f8) <= sat(f4): "
                "%.0f <= %.0f <= %.0f; p99@6k: f4 %.2f ms <= f8 %.2f "
                "ms <= f16 %.2f ms\n",
                f16.saturationQps(), f8.saturationQps(),
                f4.saturationQps(), f4.points[3].report.endToEnd.p99Ms,
                f8.points[3].report.endToEnd.p99Ms,
                f16.points[3].report.endToEnd.p99Ms);
    return 0;
}
