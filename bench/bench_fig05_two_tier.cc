/**
 * @file
 * Reproduces Fig. 5: load-latency validation of the 2-tier
 * NGINX-memcached application across thread/process configurations
 * (nginx8/mc4, nginx8/mc2, nginx4/mc2, nginx4/mc1).
 *
 * Expected shape (paper §IV-A): all curves are flat until a sharp
 * saturation knee; the knee is set by NGINX workers (4 vs 8 roughly
 * doubles it) and is insensitive to the memcached thread count.
 */

#include "bench_util.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

namespace {

SweepCurve
sweepConfig(int nginx_workers, int memcached_threads)
{
    const std::string label = "n" + std::to_string(nginx_workers) +
                              "mc" + std::to_string(memcached_threads);
    // One shared load grid so the printed rows align across configs.
    return bench::parallelSweep(
        label, linspace(8000.0, 88000.0, 11),
        [&](double qps, std::uint64_t seed) {
            models::TwoTierParams params;
            params.run.qps = qps;
            params.run.seed = seed;
            params.run.warmupSeconds = 0.4;
            params.run.durationSeconds = 1.9;
            params.nginxWorkers = nginx_workers;
            params.memcachedThreads = memcached_threads;
            return Simulation::fromBundle(
                models::twoTierBundle(params));
        });
}

}  // namespace

int
main()
{
    bench::banner("Fig. 5",
                  "2-tier NGINX-memcached load-latency validation");
    const SweepCurve n8mc4 = sweepConfig(8, 4);
    const SweepCurve n8mc2 = sweepConfig(8, 2);
    const SweepCurve n4mc2 = sweepConfig(4, 2);
    const SweepCurve n4mc1 = sweepConfig(4, 1);
    bench::printCurves({n8mc4, n8mc2, n4mc2, n4mc1});

    bench::paperNote(
        "mean latencies within 0.17 ms and tails within 0.83 ms of the "
        "real system; memcached threads do not move the knee (NGINX is "
        "the bottleneck), doubling NGINX workers roughly doubles it.");
    const double ratio_threads =
        n8mc2.saturationQps() / n8mc4.saturationQps();
    const double ratio_workers =
        n8mc2.saturationQps() / n4mc2.saturationQps();
    std::printf("shape check: sat(n8mc2)/sat(n8mc4) = %.2f "
                "(expect ~1.0), sat(n8)/sat(n4) = %.2f (expect ~2.0)\n",
                ratio_threads, ratio_workers);
    return 0;
}
