/**
 * @file
 * Example: zone partition and uplink failure on a generated fat tree.
 *
 * Runs the request fan-out case study on a generated 64-host k-ary
 * fat tree (machines.json schema v2, flow network model) under two
 * topology faults:
 *
 *   1. a *zone partition*: pod 0 (where the proxy lives) loses
 *      reachability to pod 1 for a window, so every fan-out request
 *      touching a pod-1 leaf gets an unreachable verdict, and
 *   2. an *uplink failure*: the pod0:edge0:agg0:up link — half of
 *      the proxy's cross-edge uplink capacity — goes down for a
 *      second window.
 *
 * The scenario runs twice, with and without generated backup routes
 * (topology "backup_routes"): with failover the uplink window is
 * absorbed (transfers reroute via the sibling aggregation switch at
 * the same hop count), while the partition window is not — no
 * surviving route can cross a partition, which is exactly the
 * difference between a link fault and a zone fault.  Without
 * failover both windows collapse availability.
 *
 * Usage: partition [--arity K] [--oversub R] [--fanout N] [--qps Q]
 *
 * Defaults: 4-ary fat tree with 4x oversubscription (64 hosts),
 * fan-out 24 (leaves span pods 0 and 1), 400 QPS.
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

namespace {

struct Scenario {
    int arity = 4;
    double oversub = 4.0;
    int fanout = 24;
    double qps = 400.0;
};

/** Partition pod 0 from pod 1 (0.4 s - 0.6 s), then fail the
 *  proxy's agg0 uplink (0.9 s - 1.1 s). */
json::JsonValue
faultsJson(const Scenario& s)
{
    const int half = s.arity / 2;
    const int hostsPerEdge =
        static_cast<int>(half * s.oversub + 0.5);
    const int hostsPerPod = half * hostsPerEdge;
    std::ostringstream out;
    out << R"({"faults": [{"type": "partition", "groups": [[)";
    for (int h = 0; h < hostsPerPod; ++h)
        out << (h ? ", " : "") << "\"h" << h << "\"";
    out << "], [";
    for (int h = hostsPerPod; h < 2 * hostsPerPod; ++h)
        out << (h > hostsPerPod ? ", " : "") << "\"h" << h << "\"";
    out << R"(]], "start_s": 0.4, "end_s": 0.6},)"
        << R"( {"type": "link_down", "link": "pod0:edge0:agg0:up",)"
        << R"(  "start_s": 0.9, "end_s": 1.1}]})";
    return json::parse(out.str());
}

ConfigBundle
makeBundle(const Scenario& s, bool withFailover)
{
    models::FanoutFatTreeParams params;
    params.run.qps = s.qps;
    params.run.seed = 21;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 1.5;
    params.run.clientConnections = 64;
    params.fanout = s.fanout;
    params.arity = s.arity;
    params.oversubscription = s.oversub;
    ConfigBundle bundle = models::fanoutFatTreeBundle(params);
    bundle.machines.asObject()["topology"]
        .asObject()["backup_routes"] = withFailover;
    bundle.faults = faultsJson(s);
    return bundle;
}

void
runOne(const Scenario& s, bool withFailover)
{
    auto simulation = Simulation::fromBundle(makeBundle(s, withFailover));
    const RunReport report = simulation->run();
    std::printf("---- %s\n", withFailover
                                 ? "with failover (backup routes)"
                                 : "no failover (backup_routes off)");
    std::printf("  availability  %6.2f %%   (completed %llu, "
                "failed %llu)\n",
                report.availability * 100.0,
                static_cast<unsigned long long>(report.completed),
                static_cast<unsigned long long>(report.failed));
    std::printf("  goodput       %8.1f QPS of %.1f offered\n",
                report.achievedQps, report.offeredQps);
    std::printf("  p99           %8.2f ms   (p50 %.2f ms)\n",
                report.endToEnd.p99Ms, report.endToEnd.p50Ms);
    std::printf("  failovers     %8llu\n",
                static_cast<unsigned long long>(report.failovers));
    std::printf("  unreachable   %8llu\n",
                static_cast<unsigned long long>(report.unreachable));
    for (const auto& entry : report.linkFaults) {
        std::printf("  link %-22s down %.2f s, dropped %llu "
                    "in-flight\n",
                    entry.first.c_str(), entry.second.downSeconds,
                    static_cast<unsigned long long>(
                        entry.second.drops));
    }
    std::printf("  trace digest  %016llx\n\n",
                static_cast<unsigned long long>(
                    simulation->sim().traceDigest()));
}

}  // namespace

int
main(int argc, char** argv)
{
    Scenario s;
    for (int i = 1; i < argc; ++i) {
        const auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--arity") == 0) {
            s.arity = std::atoi(next("--arity"));
        } else if (std::strcmp(argv[i], "--oversub") == 0) {
            s.oversub = std::atof(next("--oversub"));
        } else if (std::strcmp(argv[i], "--fanout") == 0) {
            s.fanout = std::atoi(next("--fanout"));
        } else if (std::strcmp(argv[i], "--qps") == 0) {
            s.qps = std::atof(next("--qps"));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--arity K] [--oversub R] "
                         "[--fanout N] [--qps Q]\n",
                         argv[0]);
            return 2;
        }
    }

    const int half = s.arity / 2;
    const int hostsPerEdge =
        static_cast<int>(half * s.oversub + 0.5);
    std::printf("fat tree k=%d, oversub %.1f -> %d hosts; fan-out "
                "%d; partition pod0|pod1 0.4-0.6 s; "
                "pod0:edge0:agg0:up down 0.9-1.1 s\n\n",
                s.arity, s.oversub,
                s.arity * half * hostsPerEdge, s.fanout);
    try {
        runOne(s, true);
        runOne(s, false);
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }
    return 0;
}
