/**
 * @file
 * Example: cache stampede against a disk-backed store.
 *
 * A cache tier fronts a backing store whose machine attaches a
 * shared-bandwidth disk (machines.json "disks").  Sweeping the cache
 * hit rate from warm to cold moves read traffic onto the store: each
 * miss issues a sized disk read that contends with every other
 * in-flight miss for the disk's read bandwidth, so as the hit rate
 * collapses the store's p99 degrades *super-linearly* — the disk
 * saturates and queueing, not service time, dominates.  That is the
 * cache-stampede / cold-start / storage-saturation family the
 * constant per-access latency model cannot express.
 *
 * The sweep is deterministic: every run's trace digest folds into
 * one sweep digest (printed at the end and pinned in CI).
 *
 * Usage: cache_stampede [--qps Q] [--write-fraction W]
 */

#include <cstdio>
#include <cstring>
#include <vector>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/models/applications.h"
#include "uqsim/models/cache_tier.h"

using namespace uqsim;

namespace {

struct Point {
    double hitRate = 0.0;
    RunReport report;
    std::uint64_t digest = 0;
};

Point
runOne(double hit_rate, double qps, double write_fraction)
{
    models::CacheStampedeParams params;
    params.run.qps = qps;
    params.run.seed = 31;
    params.run.warmupSeconds = 0.3;
    params.run.durationSeconds = 2.0;
    params.run.clientConnections = 320;
    params.hitRate = hit_rate;
    params.writeFraction = write_fraction;
    auto simulation =
        Simulation::fromBundle(models::cacheStampedeBundle(params));
    Point point;
    point.hitRate = hit_rate;
    point.report = simulation->run();
    point.digest = simulation->sim().traceDigest();
    return point;
}

}  // namespace

int
main(int argc, char** argv)
{
    // 3200 QPS of 64 KiB misses against a 200 MB/s disk: a cold
    // cache demands ~189 MB/s of reads (94% of capacity), so the
    // sweep crosses from bandwidth-idle to deep sharing.
    double qps = 3200.0;
    double write_fraction = 0.1;
    for (int i = 1; i < argc; ++i) {
        const auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--qps") == 0) {
            qps = std::atof(next("--qps"));
        } else if (std::strcmp(argv[i], "--write-fraction") == 0) {
            write_fraction = std::atof(next("--write-fraction"));
        } else {
            std::fprintf(stderr,
                         "usage: %s [--qps Q] [--write-fraction W]\n",
                         argv[0]);
            return 2;
        }
    }

    std::printf("cache stampede: %.0f QPS, %.0f%% writes, 200 MB/s "
                "store disk, 64 KiB per miss\n\n",
                qps, write_fraction * 100.0);
    std::printf("%8s %10s %12s %12s %10s %10s\n", "hit", "goodput",
                "e2e p99 ms", "store p99", "disk util", "queued");

    const std::vector<double> hit_rates = {0.95, 0.9, 0.8, 0.6,
                                           0.4,  0.2, 0.0};
    std::vector<Point> points;
    std::uint64_t sweep_digest = 0xcbf29ce484222325ULL;
    for (double hit_rate : hit_rates) {
        Point point = runOne(hit_rate, qps, write_fraction);
        const DiskStats& disk =
            point.report.disks.at("store_server/store_disk");
        const LatencyStats& store = point.report.tiers.at("store");
        std::printf("%8.2f %10.1f %12.2f %12.2f %9.1f%% %10llu\n",
                    point.hitRate, point.report.achievedQps,
                    point.report.endToEnd.p99Ms, store.p99Ms,
                    disk.utilization * 100.0,
                    static_cast<unsigned long long>(disk.queuedOps));
        sweep_digest = (sweep_digest ^ point.digest) *
                       1099511628211ULL;
        points.push_back(std::move(point));
    }

    // TTL discounting: the same stampede driven by invalidation
    // instead of a profiled miss rate (closed form, no extra runs).
    std::printf("\neffective hit rate at %.0f QPS, 200k keys, "
                "profiled 0.95:\n", qps);
    for (double ttl : {600.0, 120.0, 30.0, 5.0}) {
        std::printf("  ttl %5.0f s -> %.3f\n", ttl,
                    models::effectiveHitRate(0.95, qps, 2e5, ttl));
    }

    std::printf("\nsweep digest %016llx\n",
                static_cast<unsigned long long>(sweep_digest));

    // Self-checks: the cold store must degrade super-linearly.  From
    // hit 0.9 to hit 0.0 the miss (disk-read) load grows 10x; if the
    // disk merely shared fairly without queueing the store p99 would
    // grow about linearly with in-flight ops, so demand more than
    // the load multiplier.
    const Point& warm = points[1];   // hit 0.9
    const Point& cold = points.back();  // hit 0.0
    const double warm_p99 = warm.report.tiers.at("store").p99Ms;
    const double cold_p99 = cold.report.tiers.at("store").p99Ms;
    const double load_multiplier = (1.0 - cold.hitRate) /
                                   (1.0 - warm.hitRate);
    std::printf("store p99 %.2f ms (hit 0.9) -> %.2f ms (cold): "
                "%.1fx vs %.0fx load\n",
                warm_p99, cold_p99, cold_p99 / warm_p99,
                load_multiplier);
    if (cold_p99 <= load_multiplier * warm_p99) {
        std::fprintf(stderr,
                     "FAIL: store p99 did not degrade "
                     "super-linearly\n");
        return 1;
    }
    const DiskStats& cold_disk =
        cold.report.disks.at("store_server/store_disk");
    if (cold_disk.utilization < 0.5) {
        std::fprintf(stderr,
                     "FAIL: cold-start run left the disk idle "
                     "(util %.2f)\n",
                     cold_disk.utilization);
        return 1;
    }
    std::printf("super-linear degradation confirmed\n");
    return 0;
}
