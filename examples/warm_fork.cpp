/**
 * @file
 * Warm-state forking: pay for warm-up once, explore many
 * continuations.
 *
 * The tool runs the 2-tier NGINX-memcached application to its
 * warm-up boundary, snapshots the warm state
 * (snapshot/checkpoint.h), and then forks three continuations from
 * that single snapshot — one per offered-load scale — each restored
 * by deterministic replay and diverged only after the restore
 * validated bit-for-bit against the original configuration.
 *
 * Two properties are demonstrated and checked:
 *   - an unmodified fork (scale 1.0, no reseed) finishes with the
 *     exact trace digest of an uninterrupted straight-through run —
 *     checkpoint/restore is invisible to the event stream;
 *   - reseeded forks (--reseed T) decorrelate the client workload
 *     streams while keeping the warm server state, the
 *     warm-start-many-what-ifs workflow.
 *
 * Usage:
 *   warm_fork [--qps Q] [--seed S] [--duration D]
 *             [--dir CHECKPOINT_DIR] [--reseed T]
 *
 * Exit status: 0 on success (including the digest check), 1 on any
 * error or digest mismatch.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "uqsim/models/applications.h"
#include "uqsim/snapshot/checkpoint.h"

using namespace uqsim;

int
main(int argc, char** argv)
{
    double qps = 20000.0;
    std::uint64_t seed = 1;
    double duration = 3.0;
    std::string dir = "warm_fork_checkpoints";
    std::uint64_t reseed = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "usage: %s [--qps Q] [--seed S] "
                             "[--duration D] [--dir DIR] "
                             "[--reseed T]\n",
                             argv[0]);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--qps") {
            qps = std::atof(next_value());
        } else if (arg == "--seed") {
            seed = static_cast<std::uint64_t>(std::atoll(next_value()));
        } else if (arg == "--duration") {
            duration = std::atof(next_value());
        } else if (arg == "--dir") {
            dir = next_value();
        } else if (arg == "--reseed") {
            reseed =
                static_cast<std::uint64_t>(std::atoll(next_value()));
        } else {
            std::fprintf(stderr, "error: unknown option \"%s\"\n",
                         arg.c_str());
            return 1;
        }
    }

    models::TwoTierParams params;
    params.run.qps = qps;
    params.run.seed = seed;
    params.run.warmupSeconds = 1.0;
    params.run.durationSeconds = duration;

    // The fork factory must rebuild the *identical* configuration:
    // restore validates the snapshot's config digest against it.
    const auto factory = [&params]() {
        return Simulation::fromBundle(models::twoTierBundle(params));
    };

    try {
        // Straight-through reference run (for the digest check).
        auto reference = factory();
        reference->run();
        const std::uint64_t reference_digest =
            reference->sim().traceDigest();

        // Warm run: advance to the warm-up boundary, snapshot.
        auto warm = factory();
        warm->advanceToTime(
            secondsToSimTime(params.run.warmupSeconds));
        const std::string path =
            snapshot::writeCheckpoint(*warm, dir, "warm");
        std::printf("warm state at t=%.2fs (%llu events) -> %s\n",
                    simTimeToSeconds(warm->sim().now()),
                    static_cast<unsigned long long>(
                        warm->sim().executedEvents()),
                    path.c_str());

        // Continue the warm run too: it must match the reference.
        warm->finishRun();
        if (warm->sim().traceDigest() != reference_digest) {
            std::fprintf(stderr,
                         "error: checkpointed run diverged from the "
                         "straight-through run\n");
            return 1;
        }

        // 3-point load sweep forked from the one warm snapshot.
        const double scales[] = {0.75, 1.0, 1.25};
        std::printf("%10s %12s %10s %10s\n", "scale", "offered",
                    "p99_ms", "achieved");
        for (double scale : scales) {
            snapshot::ForkOptions fork;
            fork.loadScale = scale;
            fork.reseedToken = reseed;
            auto forked =
                snapshot::forkFromSnapshot(factory, path, fork);
            const RunReport report = forked->finishRun();
            std::printf("%10.2f %12.0f %10.3f %10.0f\n", scale,
                        qps * scale, report.endToEnd.p99Ms,
                        report.achievedQps);
            // The unmodified fork is the restored original run.
            if (scale == 1.0 && reseed == 0 &&
                forked->sim().traceDigest() != reference_digest) {
                std::fprintf(stderr,
                             "error: unmodified fork diverged from "
                             "the straight-through run\n");
                return 1;
            }
        }
        std::printf("unmodified fork digest matches the "
                    "straight-through run\n");
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
