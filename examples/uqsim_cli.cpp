/**
 * @file
 * Command-line simulator front-end: runs a configuration directory
 * (the five JSON inputs) end to end — the tool a downstream user
 * points at their own microservice descriptions.
 *
 * Usage:
 *   uqsim_cli <config-dir> [--qps N] [--duration S] [--seed N]
 *             [--warmup S] [--csv] [--json] [--reps R] [--jobs N]
 *             [--journal FILE] [--resume FILE] [--strict]
 *             [--wall-timeout S] [--stall-timeout S] [--max-events N]
 *
 * Overrides replace the corresponding fields of client.json /
 * options.json without editing the files.  --reps R runs R seed
 * replications (seeds split from --seed) on --jobs worker threads
 * (0 = all hardware threads) and reports pooled statistics with
 * across-replication confidence intervals.  --json emits the full
 * structured report (including fault counters) instead of text.
 *
 * The robustness flags apply to replicated runs (--reps > 1): a
 * failed replication is classified, journaled (--journal), and
 * salvaged around unless --strict asks for fail-fast; --resume skips
 * replications an earlier journal recorded ok; the watchdog limits
 * kill stalled or runaway replications (reported as timeouts).  Exit
 * status 2 marks a salvaged run with failures; 1 means no usable
 * result at all.
 *
 * Unknown flags and unknown JSON keys both fail with exit code 1 and
 * a did-you-mean suggestion; a typoed option must never silently
 * simulate something else.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/json/validation.h"
#include "uqsim/runner/sweep_runner.h"

using namespace uqsim;

namespace {

const std::vector<std::string> kKnownFlags = {
    "--qps",     "--duration",     "--seed",         "--warmup",
    "--csv",     "--json",         "--reps",         "--jobs",
    "--journal", "--resume",       "--strict",       "--wall-timeout",
    "--stall-timeout", "--max-events",
};

void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s <config-dir> [--qps N] [--duration S] "
                 "[--seed N] [--warmup S] [--csv] [--json] [--reps R] "
                 "[--jobs N] [--journal FILE] [--resume FILE] "
                 "[--strict] [--wall-timeout S] [--stall-timeout S] "
                 "[--max-events N]\n",
                 argv0);
}

int
rejectUnknownFlag(const char* argv0, const std::string& arg)
{
    std::string message = "error: unknown option \"" + arg + "\"";
    const std::string suggestion =
        json::suggestClosest(arg, kKnownFlags);
    if (!suggestion.empty())
        message += "; did you mean \"" + suggestion + "\"?";
    std::fprintf(stderr, "%s\n", message.c_str());
    usage(argv0);
    return 1;
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 1;
    }
    const std::string directory = argv[1];
    double qps = -1.0, duration = -1.0, warmup = -1.0;
    long seed = -1;
    bool csv = false, json_out = false;
    int reps = 1, jobs = 0;
    bool strict = false;
    std::string journal_path, resume_path;
    runner::WatchdogLimits watchdog;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--qps") {
            qps = std::atof(next_value());
        } else if (arg == "--duration") {
            duration = std::atof(next_value());
        } else if (arg == "--warmup") {
            warmup = std::atof(next_value());
        } else if (arg == "--seed") {
            seed = std::atol(next_value());
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--json") {
            json_out = true;
        } else if (arg == "--reps") {
            reps = std::atoi(next_value());
        } else if (arg == "--jobs") {
            jobs = std::atoi(next_value());
        } else if (arg == "--journal") {
            journal_path = next_value();
        } else if (arg == "--resume") {
            resume_path = next_value();
        } else if (arg == "--strict") {
            strict = true;
        } else if (arg == "--wall-timeout") {
            watchdog.wallTimeoutSeconds = std::atof(next_value());
        } else if (arg == "--stall-timeout") {
            watchdog.stallWindowSeconds = std::atof(next_value());
        } else if (arg == "--max-events") {
            watchdog.maxEventsPerReplication =
                static_cast<std::uint64_t>(std::atoll(next_value()));
        } else {
            return rejectUnknownFlag(argv[0], arg);
        }
    }
    if (reps < 1) {
        std::fprintf(stderr, "error: --reps must be >= 1\n");
        return 1;
    }
    if (jobs < 0) {
        std::fprintf(stderr, "error: --jobs must be >= 0\n");
        return 1;
    }

    try {
        ConfigBundle bundle = ConfigBundle::fromDirectory(directory);
        if (qps > 0.0) {
            json::JsonValue load = json::JsonValue::makeObject();
            load.asObject()["type"] = "constant";
            load.asObject()["qps"] = qps;
            bundle.client.asObject()["load"] = std::move(load);
        }
        if (duration > 0.0)
            bundle.options.durationSeconds = duration;
        if (warmup >= 0.0)
            bundle.options.warmupSeconds = warmup;
        if (seed >= 0)
            bundle.options.seed = static_cast<std::uint64_t>(seed);

        if (reps <= 1) {
            auto simulation = Simulation::fromBundle(bundle);
            const RunReport report = simulation->run();
            if (json_out) {
                std::cout << report.toJsonString() << '\n';
            } else if (csv) {
                std::cout << RunReport::csvHeader() << '\n'
                          << report.toCsvRow() << '\n';
            } else {
                std::cout << report.toString();
                std::cout << "events: " << report.events << " ("
                          << static_cast<long>(
                                 report.events /
                                 std::max(report.wallSeconds, 1e-9))
                          << " events/s wall)\n";
                if (report.timeouts > 0) {
                    std::cout << "client timeouts: "
                              << report.timeouts << '\n';
                }
            }
            return 0;
        }

        // Replicated run: one isolated simulation per seed split,
        // executed on the worker pool, pooled for the report.
        runner::RunnerOptions options;
        options.jobs = jobs;
        options.replications = reps;
        options.baseSeed = bundle.options.seed;
        options.failurePolicy = strict
                                    ? runner::FailurePolicy::Propagate
                                    : runner::FailurePolicy::Isolate;
        options.journalPath = journal_path;
        options.resumePath = resume_path;
        options.watchdog = watchdog;
        const runner::ReplicatedPoint point = runner::runReplicated(
            [&bundle](double, std::uint64_t rep_seed) {
                ConfigBundle replicated = bundle;
                replicated.options.seed = rep_seed;
                return Simulation::fromBundle(replicated);
            },
            qps > 0.0 ? qps : 0.0, options);
        const RunReport merged = point.mergedReport();
        if (point.merged == 0) {
            std::fprintf(stderr,
                         "error: all %d replication(s) failed:\n",
                         point.planned);
            for (const runner::ReplicationResult& rep :
                 point.replications) {
                std::fprintf(stderr, "  seed=%llu [%s] %s\n",
                             static_cast<unsigned long long>(rep.seed),
                             runner::failureKindName(rep.failure),
                             rep.error.c_str());
            }
            return 1;
        }
        if (json_out) {
            std::cout << merged.toJsonString() << '\n';
        } else if (csv) {
            std::cout << RunReport::csvHeader() << '\n'
                      << merged.toCsvRow() << '\n';
        } else {
            std::cout << merged.toString();
            std::cout << "replications: " << reps << " (base seed "
                      << bundle.options.seed << ", "
                      << (jobs > 0 ? jobs : 0) << " jobs requested)\n"
                      << "mean latency ms: "
                      << point.meanCi.describe() << '\n'
                      << "p99 latency ms:  "
                      << point.p99Ci.describe() << '\n'
                      << "achieved qps:    "
                      << point.achievedCi.describe() << '\n';
        }
        if (point.degraded()) {
            std::fprintf(stderr,
                         "warning: %d of %d replication(s) failed; "
                         "pooled statistics are degraded:\n",
                         point.planned - point.merged, point.planned);
            for (const runner::ReplicationResult& rep :
                 point.replications) {
                if (rep.ok())
                    continue;
                std::fprintf(stderr, "  seed=%llu [%s] %s\n",
                             static_cast<unsigned long long>(rep.seed),
                             runner::failureKindName(rep.failure),
                             rep.error.c_str());
            }
            return 2;
        }
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
