/**
 * @file
 * Command-line simulator front-end: runs a configuration directory
 * (the five JSON inputs) end to end — the tool a downstream user
 * points at their own microservice descriptions.
 *
 * Usage:
 *   uqsim_cli <config-dir> [--qps N] [--duration S] [--seed N]
 *             [--warmup S] [--csv]
 *
 * Overrides replace the corresponding fields of client.json /
 * options.json without editing the files.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "uqsim/core/sim/simulation.h"

using namespace uqsim;

namespace {

void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s <config-dir> [--qps N] [--duration S] "
                 "[--seed N] [--warmup S] [--csv]\n",
                 argv0);
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 1;
    }
    const std::string directory = argv[1];
    double qps = -1.0, duration = -1.0, warmup = -1.0;
    long seed = -1;
    bool csv = false;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--qps") {
            qps = std::atof(next_value());
        } else if (arg == "--duration") {
            duration = std::atof(next_value());
        } else if (arg == "--warmup") {
            warmup = std::atof(next_value());
        } else if (arg == "--seed") {
            seed = std::atol(next_value());
        } else if (arg == "--csv") {
            csv = true;
        } else {
            usage(argv[0]);
            return 1;
        }
    }

    try {
        ConfigBundle bundle = ConfigBundle::fromDirectory(directory);
        if (qps > 0.0) {
            json::JsonValue load = json::JsonValue::makeObject();
            load.asObject()["type"] = "constant";
            load.asObject()["qps"] = qps;
            bundle.client.asObject()["load"] = std::move(load);
        }
        if (duration > 0.0)
            bundle.options.durationSeconds = duration;
        if (warmup >= 0.0)
            bundle.options.warmupSeconds = warmup;
        if (seed >= 0)
            bundle.options.seed = static_cast<std::uint64_t>(seed);

        auto simulation = Simulation::fromBundle(bundle);
        const RunReport report = simulation->run();
        if (csv) {
            std::cout << RunReport::csvHeader() << '\n'
                      << report.toCsvRow() << '\n';
        } else {
            std::cout << report.toString();
            std::cout << "events: " << report.events << " ("
                      << static_cast<long>(
                             report.events /
                             std::max(report.wallSeconds, 1e-9))
                      << " events/s wall)\n";
            if (report.timeouts > 0) {
                std::cout << "client timeouts: " << report.timeouts
                          << '\n';
            }
        }
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
