/**
 * @file
 * Resilience-policy sweep on the Fig. 14 tail-at-scale fan-out.
 *
 * A coordinator fans every request out to `fanout` leaf shards, each
 * replicated threefold behind a round-robin balancer.  The fault
 * plan degrades one replica of the first shard by 20x for the whole
 * run — the "1% slow servers" effect that dominates the fan-out p99
 * in the paper's §V-A study.  The sweep then replays the same seed
 * under increasingly aggressive per-hop policies and prints the tail
 * with and without mitigation:
 *
 *   none           the raw fan-out; p99 tracks the slow replica
 *   retry          2 ms hop timeout, 2 retries with jittered backoff
 *   hedge          a hedged duplicate after a fixed 1 ms delay
 *   hedge-p95      hedge delay adapted to the observed hop p95
 *
 * Usage: resilience_sweep [fanout] [qps] [seed]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "uqsim/core/app/dispatcher.h"
#include "uqsim/core/sim/simulation.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/stage_presets.h"

using namespace uqsim;

namespace {

constexpr int kReplicas = 3;

std::string
leafName(int shard)
{
    return "leaf" + std::to_string(shard);
}

/** One-stage "simple" service document. */
json::JsonValue
simpleService(const std::string& name, json::JsonValue dist_spec)
{
    json::JsonValue doc = json::JsonValue::makeObject();
    doc.asObject()["service_name"] = name;
    doc.asObject()["execution_model"] = "simple";
    json::JsonArray stages;
    stages.push_back(
        models::processingStage(0, "proc", std::move(dist_spec)));
    doc.asObject()["stages"] = json::JsonValue(std::move(stages));
    json::JsonArray paths;
    paths.push_back(models::pathJson(0, "serve", {0}));
    doc.asObject()["paths"] = json::JsonValue(std::move(paths));
    return doc;
}

/**
 * The fan-out bundle: coordinator -> {leaf0..leafF-1} -> join, every
 * leaf tier load balanced over kReplicas single-core replicas, and
 * leaf0's replica 0 slowed 20x by the fault plan.  @p policy is the
 * coordinator->leaf edge policy JSON ("" = unmitigated).
 */
ConfigBundle
fanoutBundle(int fanout, double qps, std::uint64_t seed,
             const std::string& policy)
{
    ConfigBundle bundle;
    bundle.options.seed = seed;
    bundle.options.warmupSeconds = 0.3;
    bundle.options.durationSeconds = 2.0;

    bundle.services.push_back(
        simpleService("coordinator", models::detUs(2.0)));
    for (int shard = 0; shard < fanout; ++shard) {
        bundle.services.push_back(
            simpleService(leafName(shard), models::expUs(100.0)));
    }

    std::string machines =
        R"({"wire_latency_us": 5.0, "loopback_latency_us": 1.0,)"
        R"( "machines": [{"name": "coord", "cores": 8, "irq_cores": 0})";
    for (int shard = 0; shard < fanout; ++shard) {
        for (int replica = 0; replica < kReplicas; ++replica) {
            machines += R"(, {"name": ")" + leafName(shard) + "_" +
                        std::to_string(replica) +
                        R"(", "cores": 1, "irq_cores": 0})";
        }
    }
    bundle.machines = json::parse(machines + "]}");

    std::string pools, policies;
    for (int shard = 0; shard < fanout; ++shard) {
        if (shard > 0) {
            pools += ", ";
            policies += ", ";
        }
        pools += "\"" + leafName(shard) + "\": 32";
        policies += "\"" + leafName(shard) + "\": " + policy;
    }
    std::string graph =
        R"({"services": [{"service": "coordinator",)"
        R"( "connection_pools": {)" + pools + "},";
    if (!policy.empty())
        graph += R"( "policies": {)" + policies + "},";
    graph += R"( "instances": [{"machine": "coord", "threads": 8}]})";
    for (int shard = 0; shard < fanout; ++shard) {
        graph += R"(, {"service": ")" + leafName(shard) +
                 R"(", "lb_policy": "round_robin", "instances": [)";
        for (int replica = 0; replica < kReplicas; ++replica) {
            if (replica > 0)
                graph += ", ";
            graph += R"({"machine": ")" + leafName(shard) + "_" +
                     std::to_string(replica) + R"(", "threads": 1})";
        }
        graph += "]}";
    }
    bundle.graph = json::parse(graph + "]}");

    const int join_id = fanout + 1;
    std::string children;
    for (int shard = 0; shard < fanout; ++shard) {
        if (shard > 0)
            children += ", ";
        children += std::to_string(1 + shard);
    }
    std::string paths =
        R"({"paths": [{"probability": 1.0, "nodes":)"
        R"( [{"node_id": 0, "service": "coordinator",)"
        R"( "path": "serve", "children": [)" + children + "]}";
    for (int shard = 0; shard < fanout; ++shard) {
        paths += R"(, {"node_id": )" + std::to_string(1 + shard) +
                 R"(, "service": ")" + leafName(shard) +
                 R"(", "path": "serve", "children": [)" +
                 std::to_string(join_id) + "]}";
    }
    paths += R"(, {"node_id": )" + std::to_string(join_id) +
             R"(, "service": "coordinator", "path": "serve",)"
             R"( "children": []}]}]})";
    bundle.paths = json::parse(paths);

    bundle.client = json::parse(
        R"({"front_service": "coordinator", "connections": 64,)"
        R"( "arrival": "poisson", "load": {"type": "constant",)"
        R"( "qps": )" + std::to_string(qps) +
        R"(}, "request_bytes": {"type": "deterministic",)"
        R"( "value": 128.0}})");

    bundle.faults = json::parse(
        R"({"faults": [{"type": "slow", "instance": "leaf0.0",)"
        R"( "start_s": 0.0, "end_s": 10.0, "factor": 20.0}]})");
    return bundle;
}

}  // namespace

int
main(int argc, char** argv)
{
    const int fanout = argc > 1 ? std::atoi(argv[1]) : 8;
    const double qps = argc > 2 ? std::atof(argv[2]) : 400.0;
    const std::uint64_t seed =
        argc > 3 ? static_cast<std::uint64_t>(std::atol(argv[3])) : 1;
    if (fanout <= 0 || qps <= 0.0) {
        std::fprintf(stderr,
                     "usage: %s [fanout] [qps] [seed]\n", argv[0]);
        return 1;
    }

    struct PolicyCase {
        const char* label;
        const char* json;
    };
    const PolicyCase cases[] = {
        {"none", ""},
        {"retry",
         R"({"timeout_s": 0.002, "retries": 2,)"
         R"( "backoff_base_s": 0.0002, "jitter": 0.2})"},
        {"hedge",
         R"({"timeout_s": 0.02, "retries": 1,)"
         R"( "hedge_delay_s": 0.001, "hedge_max": 1})"},
        {"hedge-p95",
         R"({"timeout_s": 0.02, "retries": 1,)"
         R"( "hedge_delay_s": 0.001, "hedge_percentile": 0.95,)"
         R"( "hedge_max": 1})"},
    };

    std::printf("fan-out %d over %d replicas/shard, leaf0.0 slowed "
                "20x, %.0f qps, seed %llu\n\n",
                fanout, kReplicas, qps,
                static_cast<unsigned long long>(seed));
    std::printf("%-10s %10s %10s %10s %9s %9s %7s\n", "policy",
                "p50 ms", "p99 ms", "mean ms", "retries", "hedges",
                "failed");
    double baseline_p99 = 0.0;
    for (const PolicyCase& policy_case : cases) {
        try {
            auto simulation = Simulation::fromBundle(
                fanoutBundle(fanout, qps, seed, policy_case.json));
            simulation->run();
            const stats::PercentileRecorder& lat =
                simulation->latencies();
            Dispatcher& dispatcher = simulation->dispatcher();
            const double p99 = lat.percentile(99.0);
            if (std::string(policy_case.label) == "none")
                baseline_p99 = p99;
            std::printf(
                "%-10s %10.3f %10.3f %10.3f %9llu %9llu %7llu\n",
                policy_case.label, lat.percentile(50.0) * 1e3,
                p99 * 1e3, lat.mean() * 1e3,
                static_cast<unsigned long long>(
                    dispatcher.retriesSent()),
                static_cast<unsigned long long>(
                    dispatcher.hedgesSent()),
                static_cast<unsigned long long>(
                    dispatcher.requestsFailed()));
        } catch (const std::exception& error) {
            std::fprintf(stderr, "error (%s): %s\n",
                         policy_case.label, error.what());
            return 1;
        }
    }
    if (baseline_p99 > 0.0) {
        std::printf("\nunmitigated p99 is the reference: each policy "
                    "row shows how much of the\nslow-replica tail the "
                    "mitigation recovers.\n");
    }
    return 0;
}
