/**
 * @file
 * Example: incast on a generated fat tree, under both network models.
 *
 * Runs the request fan-out case study twice: once with the classic
 * constant-latency network model (every message pays a fixed wire
 * latency, bandwidth is infinite) and once on a generated k-ary
 * fat-tree cluster with the flow model (machines.json schema v2),
 * where each leaf's large response contends for the proxy host's
 * edge down-link.  With a big response payload the constant model
 * cannot see the incast bottleneck; the flow model's tail latency
 * shows it directly.
 *
 * Usage: incast [--model constant|flow|both] [--fanout N]
 *               [--arity K] [--oversub R] [--qps Q]
 *               [--response-kb N]
 *
 * Defaults: both models, fanout 16, 4-ary fat tree with 4x
 * oversubscription (64 hosts), 600 QPS, 64 kB responses.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

namespace {

RunReport
runOne(const ConfigBundle& bundle, const char* title)
{
    auto simulation = Simulation::fromBundle(bundle);
    const RunReport report = simulation->run();
    std::printf("---- %s\n", title);
    std::cout << report.toString();
    std::printf("\n");
    return report;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string model = "both";
    int fanout = 16;
    int arity = 4;
    double oversub = 4.0;
    double qps = 600.0;
    int response_kb = 64;
    for (int i = 1; i < argc; ++i) {
        const auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (std::strcmp(argv[i], "--model") == 0) {
            model = next("--model");
        } else if (std::strcmp(argv[i], "--fanout") == 0) {
            fanout = std::atoi(next("--fanout"));
        } else if (std::strcmp(argv[i], "--arity") == 0) {
            arity = std::atoi(next("--arity"));
        } else if (std::strcmp(argv[i], "--oversub") == 0) {
            oversub = std::atof(next("--oversub"));
        } else if (std::strcmp(argv[i], "--qps") == 0) {
            qps = std::atof(next("--qps"));
        } else if (std::strcmp(argv[i], "--response-kb") == 0) {
            response_kb = std::atoi(next("--response-kb"));
        } else {
            std::fprintf(
                stderr,
                "usage: %s [--model constant|flow|both] [--fanout N] "
                "[--arity K] [--oversub R] [--qps Q] "
                "[--response-kb N]\n",
                argv[0]);
            return 2;
        }
    }
    if (model != "constant" && model != "flow" && model != "both") {
        std::fprintf(stderr, "unknown --model %s\n", model.c_str());
        return 2;
    }

    models::RunParams run;
    run.qps = qps;
    run.seed = 7;
    run.warmupSeconds = 0.5;
    run.durationSeconds = 2.0;
    run.clientConnections = 128;

    if (model == "constant" || model == "both") {
        models::FanoutParams params;
        params.run = run;
        params.fanout = fanout;
        params.responseBytes = response_kb * 1024;
        runOne(models::fanoutBundle(params),
               "constant model (infinite bandwidth)");
    }
    if (model == "flow" || model == "both") {
        models::FanoutFatTreeParams params;
        params.run = run;
        params.fanout = fanout;
        params.responseBytes = response_kb * 1024;
        params.arity = arity;
        params.oversubscription = oversub;
        const int half = arity / 2;
        const int hosts_per_edge =
            std::max(1, static_cast<int>(half * oversub + 0.5));
        std::printf("generated fat tree: k=%d, oversub %.1f -> %d "
                    "hosts, flow network model\n",
                    arity, oversub, arity * half * hosts_per_edge);
        runOne(models::fanoutFatTreeBundle(params),
               "flow model (fat-tree fabric, incast visible)");
    }
    return 0;
}
