/**
 * @file
 * Quickstart: build and simulate a 2-tier NGINX-memcached service
 * from the five JSON inputs (Table I of the paper), run one load
 * point, and print the report.
 *
 * This example writes every configuration inline so the whole input
 * format is visible in one file.  The prebuilt bundles in
 * uqsim/models/applications.h generate the same documents
 * programmatically.
 */

#include <iostream>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/json/json_parser.h"

using namespace uqsim;

int
main()
{
    SimulationOptions options;
    options.seed = 42;
    options.warmupSeconds = 0.5;
    options.durationSeconds = 3.0;
    Simulation simulation(options);

    // machines.json: one 20-core server, 4 cores on soft-irq duty.
    simulation.loadMachinesJson(json::parse(R"({
        "wire_latency_us": 20,
        "loopback_latency_us": 5,
        "machines": [
            {"name": "server0", "cores": 20, "irq_cores": 4,
             "dvfs_ghz": [1.2, 1.4, 1.6, 1.8, 2.0, 2.2, 2.4, 2.6],
             "irq_per_packet_us": 8.0}
        ]})"));

    // service.json for the NGINX front-end: the intra-microservice
    // stages (epoll -> socket_read -> processing -> socket_send) and
    // the execution paths that traverse them.
    simulation.loadServiceJson(json::parse(R"({
        "service_name": "nginx",
        "execution_model": "multi_threaded",
        "threads": 4,
        "stages": [
            {"stage_name": "epoll", "stage_id": 0,
             "queue_type": "epoll", "batching": true,
             "queue_parameter": [null, 8],
             "service_time": {"base": 2e-6, "per_job_us": 0.8}},
            {"stage_name": "socket_read", "stage_id": 1,
             "queue_type": "socket", "batching": true,
             "queue_parameter": [4],
             "service_time": {"base": 1e-6, "per_byte_ns": 2.0}},
            {"stage_name": "request_processing", "stage_id": 2,
             "queue_type": "single", "batching": false,
             "service_time": {
                 "base": {"type": "exponential", "mean": 60e-6}}},
            {"stage_name": "response_processing", "stage_id": 3,
             "queue_type": "single", "batching": false,
             "service_time": {
                 "base": {"type": "exponential", "mean": 40e-6}}},
            {"stage_name": "socket_send", "stage_id": 4,
             "queue_type": "single", "batching": false,
             "service_time": {"base": 1e-6, "per_byte_ns": 1.0}}],
        "paths": [
            {"path_id": 0, "path_name": "request",
             "stages": [0, 1, 2, 4]},
            {"path_id": 1, "path_name": "response",
             "stages": [0, 1, 3, 4]}]})"));

    // service.json for memcached (the paper's Listing 1, with read
    // and write carrying separate processing distributions).
    simulation.loadServiceJson(json::parse(R"({
        "service_name": "memcached",
        "execution_model": "multi_threaded",
        "threads": 2,
        "stages": [
            {"stage_name": "epoll", "stage_id": 0,
             "queue_type": "epoll", "batching": true,
             "queue_parameter": [null, 8],
             "service_time": {"base": 2e-6, "per_job_us": 0.8}},
            {"stage_name": "socket_read", "stage_id": 1,
             "queue_type": "socket", "batching": true,
             "queue_parameter": [4],
             "service_time": {"base": 1e-6, "per_byte_ns": 2.0}},
            {"stage_name": "memcached_processing", "stage_id": 2,
             "queue_type": "single", "batching": false,
             "service_time": {
                 "base": {"type": "exponential", "mean": 8e-6}}},
            {"stage_name": "memcached_processing_write", "stage_id": 3,
             "queue_type": "single", "batching": false,
             "service_time": {
                 "base": {"type": "exponential", "mean": 10e-6}}},
            {"stage_name": "socket_send", "stage_id": 4,
             "queue_type": "single", "batching": false,
             "service_time": {"base": 1e-6, "per_byte_ns": 1.0}}],
        "paths": [
            {"path_id": 0, "path_name": "memcached_read",
             "stages": [0, 1, 2, 4]},
            {"path_id": 1, "path_name": "memcached_write",
             "stages": [0, 1, 3, 4]}]})"));

    // graph.json: deployment and connection pools.
    simulation.loadGraphJson(json::parse(R"({
        "services": [
            {"service": "nginx",
             "connection_pools": {"memcached": 8},
             "instances": [{"machine": "server0", "threads": 4}]},
            {"service": "memcached",
             "instances": [{"machine": "server0", "threads": 2}]}
        ]})"));

    // path.json: the inter-microservice flow.  HTTP/1.1 blocks the
    // client connection while a request is in flight; the response
    // leg unblocks it.
    simulation.loadPathJson(json::parse(R"({
        "nodes": [
            {"node_id": 0, "service": "nginx", "path": "request",
             "children": [1],
             "on_enter": [{"op": "block_connection"}]},
            {"node_id": 1, "service": "memcached",
             "path": "memcached_read", "children": [2]},
            {"node_id": 2, "service": "nginx", "path": "response",
             "children": [], "request_bytes": 640,
             "on_leave": [{"op": "unblock_connection",
                           "service": "nginx"}]}
        ]})"));

    // client.json: open-loop Poisson workload generator.
    simulation.loadClientJson(json::parse(R"({
        "front_service": "nginx",
        "connections": 320,
        "arrival": "poisson",
        "load": {"type": "constant", "qps": 15000},
        "request_bytes": {"type": "exponential", "mean": 128}})"));

    simulation.finalize();
    const RunReport report = simulation.run();
    std::cout << report.toString();
    std::cout << "events executed: " << report.events << " in "
              << report.wallSeconds << " s wall ("
              << static_cast<long>(report.events /
                                   std::max(report.wallSeconds, 1e-9))
              << " events/s)\n";
    return 0;
}
