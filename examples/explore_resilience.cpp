/**
 * @file
 * Example: schedule-space exploration of a resilience policy.
 *
 * Builds a 2-tier front->leaf application protected by a
 * timeout+retry policy, with a scripted leaf crash window, then
 * explores the schedules the deterministic engine never visits on
 * its own: fault-window onset jitter, retry/hedge timer nudges, and
 * same-timestamp event reorderings.  Every schedule is checked
 * against three invariants (goodput recovers after the nominal
 * window, breakers re-close, no job leaks); the first violating
 * schedule is written as a replayable file.
 *
 * Two built-in scenarios (--scenario, default "crash"):
 *   crash — scripted leaf crash window (0.40 s - 0.50 s); the
 *           explorer perturbs window onset and timer order.
 *   link  — scripted link_down on the front->leaf primary link with
 *           two backup routes of very different quality; the
 *           explorer also branches on the deterministic failover
 *           choice (RouteFailover), finding the backup pick whose
 *           latency sits beyond the retry timeout and triggers a
 *           retry storm.
 *
 * Usage:
 *   explore_resilience [--scenario crash|link] [--config DIR]
 *                      [--schedules N]
 *                      [--jitter-choices N] [--jitter-step-s S]
 *                      [--nudge-choices N] [--nudge-step-s S]
 *                      [--tie-choices N] [--depth-first]
 *                      [--journal FILE] [--schedule-out FILE]
 *                      [--recover-after-s T] [--grace-s G]
 *                      [--min-completions N]
 *   explore_resilience --replay FILE [--config DIR]
 *
 * Exit codes: 0 = all schedules clean (or replay reproduced the
 * recorded digest), 3 = a violation was found, 4 = replay digest
 * mismatch, 2 = bad usage or configuration.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "uqsim/explore/explorer.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/stage_presets.h"

using namespace uqsim;

namespace {

/** 2-tier retry scenario with a scripted leaf crash window
 *  (0.40 s - 0.50 s).  Mirrors configs the paper's fault studies
 *  use; self-contained so the example runs without files. */
ConfigBundle
retryStormBundle(std::uint64_t seed)
{
    ConfigBundle bundle;
    bundle.options.seed = seed;
    bundle.options.warmupSeconds = 0.1;
    bundle.options.durationSeconds = 1.0;
    bundle.machines = json::parse(
        R"({"wire_latency_us": 5.0, "loopback_latency_us": 1.0,)"
        R"( "machines": [)"
        R"( {"name": "front", "cores": 4, "irq_cores": 0},)"
        R"( {"name": "leaf0", "cores": 2, "irq_cores": 0}]})");
    {
        json::JsonValue front = json::JsonValue::makeObject();
        front.asObject()["service_name"] = "front";
        front.asObject()["execution_model"] = "simple";
        json::JsonArray stages;
        stages.push_back(
            models::processingStage(0, "proc", models::detUs(5.0)));
        front.asObject()["stages"] =
            json::JsonValue(std::move(stages));
        json::JsonArray paths;
        paths.push_back(models::pathJson(0, "serve", {0}));
        front.asObject()["paths"] = json::JsonValue(std::move(paths));
        bundle.services.push_back(std::move(front));
    }
    {
        json::JsonValue leaf = json::JsonValue::makeObject();
        leaf.asObject()["service_name"] = "leaf";
        leaf.asObject()["execution_model"] = "simple";
        json::JsonArray stages;
        stages.push_back(
            models::processingStage(0, "proc", models::expUs(100.0)));
        leaf.asObject()["stages"] = json::JsonValue(std::move(stages));
        json::JsonArray paths;
        paths.push_back(models::pathJson(0, "serve", {0}));
        leaf.asObject()["paths"] = json::JsonValue(std::move(paths));
        bundle.services.push_back(std::move(leaf));
    }
    bundle.graph = json::parse(
        R"({"services": [)"
        R"( {"service": "front", "connection_pools": {"leaf": 64},)"
        R"(  "policies": {"leaf": {"timeout_s": 0.002, "retries": 2,)"
        R"(   "backoff_base_s": 0.0002}},)"
        R"(  "instances": [{"machine": "front", "threads": 4}]},)"
        R"( {"service": "leaf",)"
        R"(  "instances": [{"machine": "leaf0", "threads": 2}]}]})");
    bundle.paths = json::parse(
        R"({"paths": [{"probability": 1.0, "nodes":)"
        R"( [{"node_id": 0, "service": "front", "path": "serve",)"
        R"(   "children": [1]},)"
        R"(  {"node_id": 1, "service": "leaf", "path": "serve",)"
        R"(   "children": [2]},)"
        R"(  {"node_id": 2, "service": "front", "path": "serve",)"
        R"(   "children": []}]}]})");
    bundle.client = json::parse(
        R"({"front_service": "front", "connections": 64,)"
        R"( "arrival": "poisson", "load": {"type": "constant",)"
        R"( "qps": 500.0}, "request_bytes": {"type": "deterministic",)"
        R"( "value": 128.0}})");
    bundle.faults = json::parse(
        R"({"faults": [{"type": "crash", "instance": "leaf.0",)"
        R"( "at_s": 0.4, "recover_s": 0.5}]})");
    return bundle;
}

/**
 * The same 2-tier application on an explicit flow fabric: the
 * front->leaf primary link dies for 0.40 s - 0.50 s and failover
 * must pick between two backup routes installed as repeated
 * routes[] entries.  The first backup (100 us) keeps requests well
 * inside the 2 ms retry timeout; the second (5 ms) puts *every*
 * request past it, so that failover choice turns the outage into a
 * retry storm.  The engine's default deterministically takes the
 * first survivor; the explorer's RouteFailover choice point visits
 * the other.
 */
ConfigBundle
linkStormBundle(std::uint64_t seed)
{
    ConfigBundle bundle = retryStormBundle(seed);
    bundle.machines = json::parse(
        R"({"schema_version": 2,)"
        R"( "network": {"model": "flow", "loopback_latency_us": 1.0},)"
        R"( "links": [)"
        R"( {"name": "fl", "gbps": 10.0, "latency_us": 5.0},)"
        R"( {"name": "lf", "gbps": 10.0, "latency_us": 5.0},)"
        R"( {"name": "fl_b1", "gbps": 10.0, "latency_us": 100.0},)"
        R"( {"name": "fl_b2", "gbps": 10.0, "latency_us": 5000.0}],)"
        R"( "routes": [)"
        R"( {"from": "front", "to": "leaf0", "links": ["fl"]},)"
        R"( {"from": "leaf0", "to": "front", "links": ["lf"]},)"
        R"( {"from": "front", "to": "leaf0", "links": ["fl_b1"]},)"
        R"( {"from": "front", "to": "leaf0", "links": ["fl_b2"]}],)"
        R"( "machines": [)"
        R"( {"name": "front", "cores": 4, "irq_cores": 0},)"
        R"( {"name": "leaf0", "cores": 2, "irq_cores": 0}]})");
    bundle.faults = json::parse(
        R"({"faults": [{"type": "link_down", "link": "fl",)"
        R"( "start_s": 0.4, "end_s": 0.5}]})");
    return bundle;
}

/** The retry-storm detector for the link scenario: a sane failover
 *  keeps retries near the handful caused by dropped in-flight
 *  messages; a backup past the timeout multiplies every windowed
 *  request by the retry budget. */
explore::Invariant
retriesBounded(std::uint64_t cap)
{
    return {"retries_bounded",
            [cap](const explore::InvariantContext& context) {
                if (context.report.retries <= cap)
                    return std::string();
                return "retry storm: " +
                       std::to_string(context.report.retries) +
                       " retries > cap " + std::to_string(cap);
            }};
}

int
usageError(const char* message)
{
    std::fprintf(stderr, "error: %s\n", message);
    std::fprintf(stderr,
                 "usage: explore_resilience [--scenario crash|link] "
                 "[--config DIR] "
                 "[--schedules N] [--jitter-choices N] "
                 "[--jitter-step-s S] [--nudge-choices N] "
                 "[--nudge-step-s S] [--tie-choices N] "
                 "[--depth-first] [--journal FILE] "
                 "[--schedule-out FILE] [--recover-after-s T] "
                 "[--grace-s G] [--min-completions N]\n"
                 "       explore_resilience --replay FILE "
                 "[--scenario crash|link] [--config DIR]\n");
    return 2;
}

}  // namespace

int
main(int argc, char** argv)
{
    std::string configDir;
    std::string replayPath;
    std::string scenario = "crash";
    explore::ExploreOptions options;
    options.maxSchedules = 64;
    options.limits.faultJitterChoices = 2;
    options.limits.faultJitterStepSeconds = 0.1;
    options.scheduleOutPath = "violation.schedule.json";
    double recoverAfterSeconds = 0.5;
    double graceSeconds = 0.05;
    std::uint64_t minCompletions = 5;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc)
                return nullptr;
            return argv[++i];
        };
        const char* value = nullptr;
        if (arg == "--depth-first") {
            options.depthFirst = true;
        } else if ((value = next()) == nullptr) {
            return usageError(("missing value for " + arg).c_str());
        } else if (arg == "--scenario") {
            scenario = value;
        } else if (arg == "--config") {
            configDir = value;
        } else if (arg == "--replay") {
            replayPath = value;
        } else if (arg == "--schedules") {
            options.maxSchedules =
                static_cast<std::size_t>(std::stoul(value));
        } else if (arg == "--jitter-choices") {
            options.limits.faultJitterChoices = std::stoi(value);
        } else if (arg == "--jitter-step-s") {
            options.limits.faultJitterStepSeconds = std::stod(value);
        } else if (arg == "--nudge-choices") {
            options.limits.timerNudgeChoices = std::stoi(value);
        } else if (arg == "--nudge-step-s") {
            options.limits.timerNudgeStepSeconds = std::stod(value);
        } else if (arg == "--tie-choices") {
            options.limits.maxTieChoices = std::stoi(value);
        } else if (arg == "--journal") {
            options.journalPath = value;
        } else if (arg == "--schedule-out") {
            options.scheduleOutPath = value;
        } else if (arg == "--recover-after-s") {
            recoverAfterSeconds = std::stod(value);
        } else if (arg == "--grace-s") {
            graceSeconds = std::stod(value);
        } else if (arg == "--min-completions") {
            minCompletions = std::stoull(value);
        } else {
            return usageError(("unknown flag " + arg).c_str());
        }
    }

    if (scenario != "crash" && scenario != "link")
        return usageError(("unknown scenario " + scenario).c_str());
    if (scenario == "link") {
        // The failover decision is the choice point this scenario is
        // about; let the explorer branch on it.
        options.limits.routeFailoverChoices = 2;
    }

    try {
        const ConfigBundle bundle =
            !configDir.empty() ? ConfigBundle::fromDirectory(configDir)
            : scenario == "link" ? linkStormBundle(11)
                                 : retryStormBundle(11);

        if (!replayPath.empty()) {
            const explore::Schedule schedule =
                explore::Schedule::load(replayPath);
            explore::ExploreOptions replayOptions;
            replayOptions.limits = schedule.limits;
            explore::Explorer explorer(
                explore::bundleFactory(bundle), replayOptions);
            const explore::ScheduleOutcome outcome =
                explorer.replay(schedule);
            std::printf("replayed %zu decision(s): digest %s, "
                        "recorded %s\n",
                        schedule.choices.size(),
                        explore::digestToHex(outcome.digest).c_str(),
                        explore::digestToHex(schedule.expectedDigest)
                            .c_str());
            if (!outcome.error.empty())
                std::printf("replay error: %s\n",
                            outcome.error.c_str());
            if (outcome.digest != schedule.expectedDigest) {
                std::printf("DIGEST MISMATCH — schedule is stale "
                            "for this configuration\n");
                return 4;
            }
            std::printf("reproduced the recorded run "
                        "bit-identically\n");
            return 0;
        }

        explore::Explorer explorer(explore::bundleFactory(bundle),
                                   options);
        explorer.addInvariant(explore::goodputRecovers(
            recoverAfterSeconds, graceSeconds, minCompletions));
        explorer.addInvariant(explore::breakerRecloses());
        explorer.addInvariant(explore::noJobLeaked());
        if (scenario == "link")
            explorer.addInvariant(retriesBounded(50));

        const explore::ExploreResult result = explorer.explore();
        std::printf("explored %zu schedule(s): %zu violation(s), "
                    "%zu alternative(s) pruned, %zu left in "
                    "frontier\n",
                    result.schedulesRun, result.violations,
                    result.prunedAlternatives, result.frontierLeft);
        std::printf("default-schedule digest %s\n",
                    explore::digestToHex(result.defaultDigest)
                        .c_str());
        const explore::ScheduleOutcome* violation =
            result.firstViolation();
        if (violation == nullptr) {
            std::printf("all invariants held on every explored "
                        "schedule\n");
            return 0;
        }
        std::printf("violation on schedule %zu: %s\n",
                    violation->index, violation->violation.c_str());
        for (const explore::Decision& d : violation->decisions) {
            std::printf("  %s@%s -> option %d of %d\n",
                        choiceKindName(d.kind), d.label.c_str(),
                        d.chosen, d.options);
        }
        if (!options.scheduleOutPath.empty()) {
            std::printf("replayable schedule written to %s\n",
                        options.scheduleOutPath.c_str());
        }
        return 3;
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 2;
    }
}
