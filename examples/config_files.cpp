/**
 * @file
 * Example: the file-based workflow.
 *
 * Generates the five JSON inputs for the 2-tier application into a
 * directory (the same layout shipped under configs/), reloads them
 * with ConfigBundle::fromDirectory, and runs the simulation — the
 * workflow a user with hand-written configuration files follows.
 *
 * Usage: config_files [directory]   (default: ./two_tier_configs)
 */

#include <cstdio>
#include <iostream>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

int
main(int argc, char** argv)
{
    const std::string directory =
        argc > 1 ? argv[1] : "./two_tier_configs";

    models::TwoTierParams params;
    params.run.qps = 20000.0;
    params.run.warmupSeconds = 0.5;
    params.run.durationSeconds = 2.5;
    const ConfigBundle bundle = models::twoTierBundle(params);
    models::writeBundle(bundle, directory);
    std::printf("wrote %s/{machines,graph,path,client,options}.json "
                "and services/*.json\n",
                directory.c_str());

    const ConfigBundle reloaded =
        ConfigBundle::fromDirectory(directory);
    auto simulation = Simulation::fromBundle(reloaded);
    const RunReport report = simulation->run();
    std::cout << report.toString();
    return 0;
}
