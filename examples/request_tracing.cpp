/**
 * @file
 * Domain example: per-request latency debugging with traces.
 *
 * Runs the 3-tier application near its disk-bound knee, samples
 * request traces, and prints waterfalls for a fast (cache-hit) and a
 * slow (cache-miss) request side by side — the "which tier hurt this
 * request?" question microservice operators ask, answered in
 * simulation.  Finishes with an SLO capacity search: the highest
 * load the deployment sustains at a 25 ms p99.
 */

#include <cstdio>

#include "uqsim/core/app/trace.h"
#include "uqsim/core/sim/sweep.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

int
main()
{
    models::ThreeTierParams params;
    params.run.qps = 3000.0;
    params.run.warmupSeconds = 0.3;
    params.run.durationSeconds = 1.3;
    auto simulation =
        Simulation::fromBundle(models::threeTierBundle(params));
    TraceRecorder recorder(/*sampling_rate=*/0.05, /*capacity=*/512);
    simulation->dispatcher().attachTracer(&recorder);
    simulation->run();

    // Pick the fastest and slowest completed traces.
    const RequestTrace* fastest = nullptr;
    const RequestTrace* slowest = nullptr;
    for (const RequestTrace& trace : recorder.traces()) {
        const SimTime latency = trace.completed - trace.started;
        if (fastest == nullptr ||
            latency < fastest->completed - fastest->started)
            fastest = &trace;
        if (slowest == nullptr ||
            latency > slowest->completed - slowest->started)
            slowest = &trace;
    }
    std::printf("sampled %zu traces at 3 kQPS (3-tier, 10%% cache "
                "misses)\n\n",
                recorder.traces().size());
    if (fastest != nullptr) {
        std::printf("fastest sampled request (cache hit):\n%s\n",
                    recorder.waterfall(*fastest).c_str());
    }
    if (slowest != nullptr) {
        std::printf("slowest sampled request (cache miss through "
                    "MongoDB's disk):\n%s\n",
                    recorder.waterfall(*slowest).c_str());
    }

    // Capacity planning: highest sustainable load at a 25 ms p99.
    const CapacitySearchResult capacity = findSloCapacity(
        [](double qps) {
            models::ThreeTierParams p;
            p.run.qps = qps;
            p.run.warmupSeconds = 0.3;
            p.run.durationSeconds = 1.3;
            return Simulation::fromBundle(models::threeTierBundle(p));
        },
        /*slo_p99_ms=*/25.0, 500.0, 10000.0);
    std::printf("SLO capacity (p99 <= 25 ms): ~%.0f qps "
                "(p99 %.2f ms there, %d probe runs)\n",
                capacity.capacityQps,
                capacity.atCapacity.endToEnd.p99Ms,
                capacity.iterations);
    return 0;
}
