/**
 * @file
 * Domain example: studying tail-at-scale effects (paper §V-A).
 *
 * The insight µqSim exists for: performance pathologies that only
 * emerge at scales larger than any research testbed.  This example
 * simulates a 200-server fan-out cluster — far beyond a lab rack —
 * and shows how a handful of misbehaving servers comes to dominate
 * the p99, then quantifies what fixing half of them would buy.
 */

#include <cmath>
#include <cstdio>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

namespace {

RunReport
runCluster(int cluster, double slow_fraction)
{
    models::TailAtScaleParams params;
    params.run.qps = 30.0;
    params.run.warmupSeconds = 0.5;
    params.run.durationSeconds = 6.5;
    params.run.clientConnections = 64;
    params.clusterSize = cluster;
    params.slowFraction = slow_fraction;
    auto simulation =
        Simulation::fromBundle(models::tailAtScaleBundle(params));
    return simulation->run();
}

}  // namespace

int
main()
{
    const int cluster = 200;
    std::printf("fan-out cluster of %d servers, exponential 1 ms "
                "leaves, slow = 10x mean\n\n", cluster);
    std::printf("%12s %12s %12s %12s %14s\n", "slow_frac", "p50_ms",
                "p99_ms", "max_ms", "P(hit slow)");
    for (double fraction : {0.0, 0.005, 0.01, 0.02, 0.05}) {
        const RunReport report = runCluster(cluster, fraction);
        std::printf("%12.3f %12.2f %12.2f %12.2f %14.3f\n", fraction,
                    report.endToEnd.p50Ms, report.endToEnd.p99Ms,
                    report.endToEnd.maxMs,
                    1.0 - std::pow(1.0 - fraction, cluster));
    }
    std::printf(
        "\nreading: with 1%% slow servers, a request almost surely "
        "touches one (P = %.2f), so the p99 tracks the slow-server "
        "latency rather than the healthy 1 ms leaves — the "
        "tail-at-scale effect of Dean & Barroso, reproduced in "
        "simulation.\n",
        1.0 - std::pow(0.99, cluster));
    return 0;
}
