/**
 * @file
 * Domain example: QoS-aware power management (paper §V-B).
 *
 * A 2-tier application under diurnal load is managed by Algorithm 1:
 * the end-to-end 5 ms p99 target is divided into learned per-tier
 * targets, and each tier's DVFS setting is adjusted every decision
 * interval.  The example prints the tail-latency and frequency
 * trajectories plus the violation rate and the energy saved versus
 * running at nominal frequency.
 */

#include <cstdio>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/models/applications.h"
#include "uqsim/power/energy_model.h"
#include "uqsim/power/power_manager.h"

using namespace uqsim;

int
main()
{
    models::PowerTwoTierParams params;
    params.run.seed = 11;
    params.run.warmupSeconds = 1.0;
    params.run.durationSeconds = 60.0;
    params.baseQps = 5000.0;
    params.amplitudeQps = 3500.0;
    params.periodSeconds = 30.0;
    auto simulation =
        Simulation::fromBundle(models::powerTwoTierBundle(params));

    power::PowerManagerConfig config;
    config.intervalSeconds = 0.5;
    config.qosTargetSeconds = 5e-3;
    power::PowerManager manager(
        simulation->sim(), config,
        {{"nginx",
          {simulation->deployment().instance("nginx", 0).dvfs()}},
         {"memcached",
          {simulation->deployment()
               .instance("memcached", 0)
               .dvfs()}}});
    simulation->setCompletionListener(
        [&](const Job&, double seconds) {
            manager.noteEndToEnd(seconds);
        });
    simulation->setTierListener(
        [&](const std::string& tier, double seconds) {
            manager.noteTierLatency(tier, seconds);
        });
    power::EnergyTracker nginx_energy(
        simulation->sim(),
        *simulation->deployment().instance("nginx", 0).dvfs(), 2);
    power::EnergyTracker memcached_energy(
        simulation->sim(),
        *simulation->deployment().instance("memcached", 0).dvfs(), 2);
    manager.start();
    simulation->run();

    std::printf("%6s %12s %12s %12s\n", "t(s)", "p99(ms)",
                "nginx(GHz)", "mc(GHz)");
    for (double t = 2.0; t <= params.run.durationSeconds; t += 2.0) {
        std::printf("%6.0f %12.2f %12.1f %12.1f\n", t,
                    manager.tailSeries().valueAt(t),
                    manager.frequencySeries("nginx").valueAt(t, 2.6),
                    manager.frequencySeries("memcached")
                        .valueAt(t, 2.6));
    }
    std::printf("\nQoS target 5 ms p99: violated in %.1f%% of %llu "
                "decision windows\n",
                manager.violationRate() * 100.0,
                static_cast<unsigned long long>(manager.windows()));
    std::printf("energy saved vs nominal: nginx %.0f%%, memcached "
                "%.0f%%\n",
                nginx_energy.savingsFraction() * 100.0,
                memcached_energy.savingsFraction() * 100.0);
    return 0;
}
