/**
 * @file
 * Domain example: the paper's social network application (Fig. 11).
 *
 * A client retrieves a user's post through a Thrift front-end that
 * queries the User and Post services in parallel (fan-out +
 * synchronization), optionally fetches embedded media, and composes
 * the response.  Each logic tier is backed by memcached; posts fall
 * through to MongoDB on a cache miss.
 *
 * The example sweeps load, prints the load-latency curve, and then
 * breaks one operating point down per tier — the kind of per-tier
 * attribution a microservices simulator exists to provide.
 */

#include <cstdio>

#include "uqsim/core/sim/sweep.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

int
main()
{
    models::SocialNetworkParams base;
    base.run.warmupSeconds = 0.5;
    base.run.durationSeconds = 2.5;
    base.mediaProbability = 0.25;
    base.postMissProbability = 0.2;

    const SweepCurve curve = runLoadSweep(
        "social", linspace(1000.0, 9000.0, 5), [&](double qps) {
            models::SocialNetworkParams params = base;
            params.run.qps = qps;
            return Simulation::fromBundle(
                models::socialNetworkBundle(params));
        });
    std::fputs(formatSweepTable({curve}).c_str(), stdout);
    std::printf("saturation ~%.0f qps\n\n", curve.saturationQps());

    // Detailed look at a healthy operating point.
    models::SocialNetworkParams params = base;
    params.run.qps = 4000.0;
    auto simulation =
        Simulation::fromBundle(models::socialNetworkBundle(params));
    const RunReport report = simulation->run();
    std::printf("at %.0f qps: end-to-end mean %.3f ms, p99 %.3f ms\n",
                report.offeredQps, report.endToEnd.meanMs,
                report.endToEnd.p99Ms);
    std::printf("%-16s %10s %10s %10s\n", "tier", "visits",
                "mean_ms", "p99_ms");
    for (const auto& [tier, stats] : report.tiers) {
        std::printf("%-16s %10llu %10.3f %10.3f\n", tier.c_str(),
                    static_cast<unsigned long long>(stats.count),
                    stats.meanMs, stats.p99Ms);
    }
    std::printf("\ninstance utilization:\n");
    for (auto* instance : simulation->deployment().allInstances()) {
        std::printf("  %-16s cpu %.1f%%\n", instance->name().c_str(),
                    instance->cpuUtilization() * 100.0);
    }
    return 0;
}
