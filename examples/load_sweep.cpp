/**
 * @file
 * Generic load-sweep tool: sweeps offered load for one of the
 * bundled applications and prints the load-latency curve.
 *
 * Usage:
 *   load_sweep <app> [lo hi points [duration_s]]
 *
 * where <app> is one of: two_tier, three_tier, lb4, lb8, lb16,
 * fanout4, fanout8, fanout16, thrift, social.
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "uqsim/core/sim/sweep.h"
#include "uqsim/models/applications.h"

using namespace uqsim;

namespace {

models::RunParams
runParams(double qps, double duration)
{
    models::RunParams run;
    run.qps = qps;
    run.warmupSeconds = 0.5;
    run.durationSeconds = duration;
    return run;
}

std::unique_ptr<Simulation>
makeApp(const std::string& app, double qps, double duration)
{
    if (app == "two_tier") {
        models::TwoTierParams params;
        params.run = runParams(qps, duration);
        return Simulation::fromBundle(models::twoTierBundle(params));
    }
    if (app == "three_tier") {
        models::ThreeTierParams params;
        params.run = runParams(qps, duration);
        return Simulation::fromBundle(models::threeTierBundle(params));
    }
    if (app.rfind("lb", 0) == 0) {
        models::LoadBalancerParams params;
        params.run = runParams(qps, duration);
        params.webServers = std::atoi(app.c_str() + 2);
        return Simulation::fromBundle(
            models::loadBalancerBundle(params));
    }
    if (app.rfind("fanout", 0) == 0) {
        models::FanoutParams params;
        params.run = runParams(qps, duration);
        params.fanout = std::atoi(app.c_str() + 6);
        return Simulation::fromBundle(models::fanoutBundle(params));
    }
    if (app == "thrift") {
        models::ThriftEchoParams params;
        params.run = runParams(qps, duration);
        return Simulation::fromBundle(models::thriftEchoBundle(params));
    }
    if (app == "social") {
        models::SocialNetworkParams params;
        params.run = runParams(qps, duration);
        return Simulation::fromBundle(
            models::socialNetworkBundle(params));
    }
    throw std::invalid_argument("unknown app: " + app);
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s <app> [lo hi points [duration_s]]\n",
                     argv[0]);
        return 1;
    }
    const std::string app = argv[1];
    double lo = 1000.0, hi = 50000.0;
    int points = 8;
    double duration = 2.5;
    if (argc >= 5) {
        lo = std::atof(argv[2]);
        hi = std::atof(argv[3]);
        points = std::atoi(argv[4]);
    }
    if (argc >= 6)
        duration = std::atof(argv[5]);

    const SweepCurve curve = runLoadSweep(
        app, linspace(lo, hi, points), [&](double qps) {
            return makeApp(app, qps, duration);
        });
    std::cout << formatSweepTable({curve});
    std::cout << "saturation ~" << curve.saturationQps()
              << " qps, p99 before saturation "
              << curve.tailBeforeSaturationMs() << " ms\n";
    return 0;
}
