/**
 * @file
 * Generic load-sweep tool: sweeps offered load for one of the
 * bundled applications and prints the load-latency curve.  Runs the
 * (load × seed replication) grid on the parallel SweepRunner; with
 * more than one replication the table shows across-replication
 * confidence intervals.
 *
 * Usage:
 *   load_sweep <app> [lo hi points [duration_s]]
 *             [--jobs N] [--reps R] [--seed S]
 *             [--journal FILE] [--resume FILE] [--strict]
 *             [--wall-timeout S] [--stall-timeout S] [--max-events N]
 *             [--checkpoint-every N] [--checkpoint-seconds S]
 *             [--checkpoint-dir DIR] [--checkpoint-keep K]
 *             [--resume-from-snapshot]
 *
 * where <app> is one of: two_tier, three_tier, lb4, lb8, lb16,
 * fanout4, fanout8, fanout16, thrift, social.  --jobs 0 (default)
 * uses all hardware threads.
 *
 * Robustness flags (docs/ARCHITECTURE.md §"Harness failure-handling
 * contract"): --journal appends every job's fate to a JSONL run
 * journal; --resume skips jobs an earlier journal already recorded
 * ok and re-runs only failed/missing ones; --strict restores the
 * legacy fail-fast behaviour (first error aborts the sweep); the
 * watchdog flags kill stalled or runaway replications and report
 * them as timeouts.
 *
 * Checkpoint flags (docs/ARCHITECTURE.md §"Checkpoint / restore"):
 * --checkpoint-every N writes a snapshot of every in-flight
 * replication each N executed events (--checkpoint-seconds uses a
 * simulated-time cadence instead) under --checkpoint-dir (default
 * "checkpoints"), keeping the newest --checkpoint-keep per job;
 * --resume-from-snapshot restores each job from its newest valid
 * snapshot, so a SIGKILL'd sweep replays at most one checkpoint
 * interval.  Checkpointing never changes results — trace digests
 * match an uncheckpointed run exactly.
 *
 * Exit status: 0 all replications ok; 1 usage/config error or (with
 * --strict) a failed job; 2 the sweep completed but some
 * replications failed and were salvaged around (see the journal or
 * stderr for the per-job taxonomy).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "uqsim/json/validation.h"
#include "uqsim/models/applications.h"
#include "uqsim/runner/sweep_runner.h"

using namespace uqsim;

namespace {

models::RunParams
runParams(double qps, std::uint64_t seed, double duration)
{
    models::RunParams run;
    run.qps = qps;
    run.seed = seed;
    // durationSeconds is the total horizon; keep a measurement
    // window even when the user asks for a very short run.
    run.warmupSeconds = std::min(0.5, duration * 0.2);
    run.durationSeconds = duration;
    return run;
}

std::unique_ptr<Simulation>
makeApp(const std::string& app, double qps, std::uint64_t seed,
        double duration)
{
    if (app == "two_tier") {
        models::TwoTierParams params;
        params.run = runParams(qps, seed, duration);
        return Simulation::fromBundle(models::twoTierBundle(params));
    }
    if (app == "three_tier") {
        models::ThreeTierParams params;
        params.run = runParams(qps, seed, duration);
        return Simulation::fromBundle(models::threeTierBundle(params));
    }
    if (app.rfind("lb", 0) == 0) {
        models::LoadBalancerParams params;
        params.run = runParams(qps, seed, duration);
        params.webServers = std::atoi(app.c_str() + 2);
        return Simulation::fromBundle(
            models::loadBalancerBundle(params));
    }
    if (app.rfind("fanout", 0) == 0) {
        models::FanoutParams params;
        params.run = runParams(qps, seed, duration);
        params.fanout = std::atoi(app.c_str() + 6);
        return Simulation::fromBundle(models::fanoutBundle(params));
    }
    if (app == "thrift") {
        models::ThriftEchoParams params;
        params.run = runParams(qps, seed, duration);
        return Simulation::fromBundle(models::thriftEchoBundle(params));
    }
    if (app == "social") {
        models::SocialNetworkParams params;
        params.run = runParams(qps, seed, duration);
        return Simulation::fromBundle(
            models::socialNetworkBundle(params));
    }
    throw std::invalid_argument("unknown app: " + app);
}

void
usage(const char* argv0)
{
    std::fprintf(stderr,
                 "usage: %s <app> [lo hi points [duration_s]] "
                 "[--jobs N] [--reps R] [--seed S] "
                 "[--journal FILE] [--resume FILE] [--strict] "
                 "[--wall-timeout S] [--stall-timeout S] "
                 "[--max-events N] "
                 "[--checkpoint-every N] [--checkpoint-seconds S] "
                 "[--checkpoint-dir DIR] [--checkpoint-keep K] "
                 "[--resume-from-snapshot]\n",
                 argv0);
}

}  // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        usage(argv[0]);
        return 1;
    }
    const std::string app = argv[1];
    double lo = 1000.0, hi = 50000.0;
    int points = 8;
    double duration = 2.5;
    runner::RunnerOptions options;
    options.jobs = 0;  // all hardware threads

    std::vector<const char*> positional;
    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next_value = [&]() -> const char* {
            if (i + 1 >= argc) {
                usage(argv[0]);
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--jobs") {
            options.jobs = std::atoi(next_value());
        } else if (arg == "--reps") {
            options.replications = std::atoi(next_value());
        } else if (arg == "--seed") {
            options.baseSeed =
                static_cast<std::uint64_t>(std::atol(next_value()));
        } else if (arg == "--journal") {
            options.journalPath = next_value();
        } else if (arg == "--resume") {
            options.resumePath = next_value();
        } else if (arg == "--strict") {
            options.failurePolicy = runner::FailurePolicy::Propagate;
        } else if (arg == "--wall-timeout") {
            options.watchdog.wallTimeoutSeconds =
                std::atof(next_value());
        } else if (arg == "--stall-timeout") {
            options.watchdog.stallWindowSeconds =
                std::atof(next_value());
        } else if (arg == "--max-events") {
            options.watchdog.maxEventsPerReplication =
                static_cast<std::uint64_t>(std::atoll(next_value()));
        } else if (arg == "--checkpoint-every") {
            options.checkpoint.everyEvents =
                static_cast<std::uint64_t>(std::atoll(next_value()));
            if (options.checkpoint.dir.empty())
                options.checkpoint.dir = "checkpoints";
        } else if (arg == "--checkpoint-seconds") {
            options.checkpoint.everySimSeconds =
                std::atof(next_value());
            if (options.checkpoint.dir.empty())
                options.checkpoint.dir = "checkpoints";
        } else if (arg == "--checkpoint-dir") {
            options.checkpoint.dir = next_value();
        } else if (arg == "--checkpoint-keep") {
            options.checkpoint.keep = std::atoi(next_value());
        } else if (arg == "--resume-from-snapshot") {
            options.resumeFromSnapshot = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::string message =
                "error: unknown option \"" + arg + "\"";
            const std::string suggestion = json::suggestClosest(
                arg, {"--jobs", "--reps", "--seed", "--journal",
                      "--resume", "--strict", "--wall-timeout",
                      "--stall-timeout", "--max-events",
                      "--checkpoint-every", "--checkpoint-seconds",
                      "--checkpoint-dir", "--checkpoint-keep",
                      "--resume-from-snapshot"});
            if (!suggestion.empty())
                message += "; did you mean \"" + suggestion + "\"?";
            std::fprintf(stderr, "%s\n", message.c_str());
            usage(argv[0]);
            return 1;
        } else {
            positional.push_back(argv[i]);
        }
    }
    if (positional.size() >= 3) {
        lo = std::atof(positional[0]);
        hi = std::atof(positional[1]);
        points = std::atoi(positional[2]);
    }
    if (positional.size() >= 4)
        duration = std::atof(positional[3]);

    try {
        runner::SweepRunner sweep_runner(options);
        sweep_runner.addSweep(
            app, linspace(lo, hi, points),
            [&](double qps, std::uint64_t seed) {
                return makeApp(app, qps, seed, duration);
            });
        const std::vector<runner::ReplicatedCurve> curves =
            sweep_runner.run();
        if (options.replications > 1) {
            std::cout << runner::formatReplicatedTable(curves);
        }
        const SweepCurve curve = curves.front().toSweepCurve();
        if (options.replications <= 1)
            std::cout << formatSweepTable({curve});
        std::cout << "saturation ~" << curve.saturationQps()
                  << " qps, p99 before saturation "
                  << curve.tailBeforeSaturationMs() << " ms ("
                  << sweep_runner.effectiveJobs() << " jobs, "
                  << options.replications << " replication(s))\n";
        if (sweep_runner.restoredJobs() > 0) {
            std::cout << sweep_runner.restoredJobs()
                      << " job(s) restored from " << options.resumePath
                      << "\n";
        }
        if (sweep_runner.failedJobs() > 0) {
            std::fprintf(stderr,
                         "warning: %d job(s) failed and were salvaged "
                         "around:\n",
                         sweep_runner.failedJobs());
            for (const runner::ReplicatedCurve& failed_curve : curves) {
                for (const runner::ReplicatedPoint& point :
                     failed_curve.points) {
                    for (const runner::ReplicationResult& rep :
                         point.replications) {
                        if (rep.ok())
                            continue;
                        std::fprintf(
                            stderr, "  %s qps=%g rep seed=%llu [%s] %s\n",
                            failed_curve.label.c_str(), point.offeredQps,
                            static_cast<unsigned long long>(rep.seed),
                            runner::failureKindName(rep.failure),
                            rep.error.c_str());
                    }
                }
            }
            return 2;
        }
    } catch (const std::exception& error) {
        std::fprintf(stderr, "error: %s\n", error.what());
        return 1;
    }
    return 0;
}
