/**
 * @file
 * Unit tests for the JSON substrate: value model, parser, writer.
 */

#include <gtest/gtest.h>

#include "uqsim/json/json_parser.h"
#include "uqsim/json/json_writer.h"

namespace uqsim {
namespace json {
namespace {

// ----------------------------------------------------------- JsonValue

TEST(JsonValue, DefaultIsNull)
{
    JsonValue value;
    EXPECT_TRUE(value.isNull());
    EXPECT_EQ(value.type(), JsonType::Null);
}

TEST(JsonValue, BoolRoundTrip)
{
    JsonValue value(true);
    EXPECT_TRUE(value.isBool());
    EXPECT_TRUE(value.asBool());
    EXPECT_FALSE(JsonValue(false).asBool());
}

TEST(JsonValue, IntRoundTrip)
{
    JsonValue value(std::int64_t{-42});
    EXPECT_TRUE(value.isInt());
    EXPECT_TRUE(value.isNumber());
    EXPECT_EQ(value.asInt(), -42);
    EXPECT_DOUBLE_EQ(value.asDouble(), -42.0);
}

TEST(JsonValue, DoubleRoundTrip)
{
    JsonValue value(2.5);
    EXPECT_TRUE(value.isDouble());
    EXPECT_FALSE(value.isInt());
    EXPECT_DOUBLE_EQ(value.asDouble(), 2.5);
}

TEST(JsonValue, IntIsNotDoubleForEquality)
{
    EXPECT_FALSE(JsonValue(3) == JsonValue(3.0));
    EXPECT_TRUE(JsonValue(3) == JsonValue(3));
}

TEST(JsonValue, StringRoundTrip)
{
    JsonValue value("hello");
    EXPECT_TRUE(value.isString());
    EXPECT_EQ(value.asString(), "hello");
}

TEST(JsonValue, TypeMismatchThrows)
{
    JsonValue value(1);
    EXPECT_THROW(value.asString(), JsonError);
    EXPECT_THROW(value.asArray(), JsonError);
    EXPECT_THROW(value.asObject(), JsonError);
    EXPECT_THROW(JsonValue("x").asInt(), JsonError);
    EXPECT_THROW(JsonValue(2.5).asInt(), JsonError);
}

TEST(JsonValue, ObjectInsertionOrderPreserved)
{
    JsonValue value = JsonValue::makeObject();
    value.asObject()["zebra"] = 1;
    value.asObject()["alpha"] = 2;
    value.asObject()["mid"] = 3;
    std::vector<std::string> keys;
    for (const auto& [key, member] : value.asObject())
        keys.push_back(key);
    EXPECT_EQ(keys, (std::vector<std::string>{"zebra", "alpha", "mid"}));
}

TEST(JsonValue, ObjectAtThrowsOnMissing)
{
    JsonValue value = JsonValue::makeObject();
    EXPECT_THROW(value.at("missing"), JsonError);
}

TEST(JsonValue, ObjectContains)
{
    JsonValue value = JsonValue::makeObject();
    value.asObject()["present"] = 1;
    value.asObject()["null_member"] = JsonValue();
    EXPECT_TRUE(value.contains("present"));
    // A null member does not count as present for config purposes.
    EXPECT_FALSE(value.contains("null_member"));
    EXPECT_FALSE(value.contains("absent"));
}

TEST(JsonValue, ObjectErase)
{
    JsonValue value = JsonValue::makeObject();
    value.asObject()["a"] = 1;
    EXPECT_TRUE(value.asObject().erase("a"));
    EXPECT_FALSE(value.asObject().erase("a"));
    EXPECT_EQ(value.size(), 0u);
}

TEST(JsonValue, GetOrFallbacks)
{
    JsonValue value = JsonValue::makeObject();
    value.asObject()["i"] = 7;
    value.asObject()["d"] = 1.5;
    value.asObject()["s"] = "text";
    value.asObject()["b"] = true;
    EXPECT_EQ(value.getOr("i", std::int64_t{0}), 7);
    EXPECT_EQ(value.getOr("missing", std::int64_t{9}), 9);
    EXPECT_DOUBLE_EQ(value.getOr("d", 0.0), 1.5);
    EXPECT_DOUBLE_EQ(value.getOr("i", 0.0), 7.0);  // int promotes
    EXPECT_EQ(value.getOr("s", "dflt"), "text");
    EXPECT_EQ(value.getOr("missing", "dflt"), "dflt");
    EXPECT_TRUE(value.getOr("b", false));
    EXPECT_TRUE(value.getOr("missing", true));
}

TEST(JsonValue, ArrayIndexing)
{
    JsonArray array;
    array.emplace_back(1);
    array.emplace_back("two");
    JsonValue value(std::move(array));
    EXPECT_EQ(value.size(), 2u);
    EXPECT_EQ(value.at(std::size_t{0}).asInt(), 1);
    EXPECT_EQ(value.at(std::size_t{1}).asString(), "two");
    EXPECT_THROW(value.at(std::size_t{2}), JsonError);
}

TEST(JsonValue, DeepEquality)
{
    JsonValue a = parse(R"({"x": [1, 2, {"y": true}], "z": null})");
    JsonValue b = parse(R"({"z": null, "x": [1, 2, {"y": true}]})");
    JsonValue c = parse(R"({"x": [1, 2, {"y": false}], "z": null})");
    EXPECT_TRUE(a == b);  // key order does not matter
    EXPECT_TRUE(a != c);
}

// -------------------------------------------------------------- parser

TEST(JsonParser, ParsesScalars)
{
    EXPECT_TRUE(parse("null").isNull());
    EXPECT_TRUE(parse("true").asBool());
    EXPECT_FALSE(parse("false").asBool());
    EXPECT_EQ(parse("123").asInt(), 123);
    EXPECT_EQ(parse("-7").asInt(), -7);
    EXPECT_DOUBLE_EQ(parse("1.25").asDouble(), 1.25);
    EXPECT_DOUBLE_EQ(parse("-2e3").asDouble(), -2000.0);
    EXPECT_DOUBLE_EQ(parse("5E-3").asDouble(), 0.005);
    EXPECT_EQ(parse("\"abc\"").asString(), "abc");
}

TEST(JsonParser, IntegerVsDoubleDetection)
{
    EXPECT_TRUE(parse("10").isInt());
    EXPECT_TRUE(parse("10.0").isDouble());
    EXPECT_TRUE(parse("1e2").isDouble());
}

TEST(JsonParser, HugeIntegerFallsBackToDouble)
{
    const JsonValue value = parse("123456789012345678901234567890");
    EXPECT_TRUE(value.isDouble());
    EXPECT_GT(value.asDouble(), 1e29);
}

TEST(JsonParser, NestedStructures)
{
    const JsonValue value =
        parse(R"({"a": {"b": [1, [2, 3], {"c": "d"}]}})");
    EXPECT_EQ(value.at("a").at("b").at(std::size_t{1})
                  .at(std::size_t{0}).asInt(),
              2);
    EXPECT_EQ(value.at("a").at("b").at(std::size_t{2})
                  .at("c").asString(),
              "d");
}

TEST(JsonParser, StringEscapes)
{
    EXPECT_EQ(parse(R"("a\nb\tc\"d\\e\/f")").asString(),
              "a\nb\tc\"d\\e/f");
    EXPECT_EQ(parse(R"("A")").asString(), "A");
    EXPECT_EQ(parse(R"("é")").asString(), "\xc3\xa9");   // é
    EXPECT_EQ(parse(R"("中")").asString(), "\xe4\xb8\xad");  // 中
}

TEST(JsonParser, SurrogatePairs)
{
    // U+1F600 (emoji) as a surrogate pair.
    EXPECT_EQ(parse(R"("😀")").asString(),
              "\xf0\x9f\x98\x80");
}

TEST(JsonParser, UnpairedSurrogateFails)
{
    EXPECT_THROW(parse(R"("\ud83d")"), JsonParseError);
}

TEST(JsonParser, CommentsAndTrailingCommas)
{
    const JsonValue value = parse(R"({
        // line comment
        "a": 1,   /* block comment */
        "b": [1, 2, 3,],
    })");
    EXPECT_EQ(value.at("a").asInt(), 1);
    EXPECT_EQ(value.at("b").size(), 3u);
}

TEST(JsonParser, EmptyContainers)
{
    EXPECT_EQ(parse("[]").size(), 0u);
    EXPECT_EQ(parse("{}").size(), 0u);
    EXPECT_EQ(parse("[ ]").size(), 0u);
    EXPECT_EQ(parse("{ }").size(), 0u);
}

TEST(JsonParser, ErrorsCarryPosition)
{
    try {
        parse("{\n  \"a\": tru\n}");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError& error) {
        EXPECT_EQ(error.line(), 2);
        EXPECT_GT(error.column(), 1);
    }
}

TEST(JsonParser, RejectsMalformedDocuments)
{
    EXPECT_THROW(parse(""), JsonParseError);
    EXPECT_THROW(parse("{"), JsonParseError);
    EXPECT_THROW(parse("[1, 2"), JsonParseError);
    EXPECT_THROW(parse("{\"a\" 1}"), JsonParseError);
    EXPECT_THROW(parse("{a: 1}"), JsonParseError);
    EXPECT_THROW(parse("\"unterminated"), JsonParseError);
    EXPECT_THROW(parse("12."), JsonParseError);
    EXPECT_THROW(parse("1e"), JsonParseError);
    EXPECT_THROW(parse("nul"), JsonParseError);
    EXPECT_THROW(parse("1 2"), JsonParseError);  // trailing garbage
}

TEST(JsonParser, RejectsControlCharactersInStrings)
{
    EXPECT_THROW(parse("\"a\nb\""), JsonParseError);
}

TEST(JsonParser, NestingAtTheDepthLimitParses)
{
    std::string doc;
    for (int i = 0; i < kMaxParseDepth; ++i)
        doc += '[';
    for (int i = 0; i < kMaxParseDepth; ++i)
        doc += ']';
    EXPECT_NO_THROW(parse(doc));
}

TEST(JsonParser, NestingBeyondTheDepthLimitFailsWithPosition)
{
    // A pathological document one level past the limit must fail
    // with a positioned parse error, not overflow the call stack.
    std::string doc;
    for (int i = 0; i < kMaxParseDepth + 1; ++i)
        doc += '[';
    for (int i = 0; i < kMaxParseDepth + 1; ++i)
        doc += ']';
    try {
        parse(doc);
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError& error) {
        EXPECT_NE(std::string(error.what()).find("depth"),
                  std::string::npos);
        EXPECT_EQ(error.line(), 1);
        // The offending bracket is the (limit+1)-th '['.
        EXPECT_EQ(error.column(), kMaxParseDepth + 1);
    }

    // Objects hit the same guard.
    std::string objects;
    for (int i = 0; i < kMaxParseDepth + 1; ++i)
        objects += "{\"k\":";
    objects += "1";
    for (int i = 0; i < kMaxParseDepth + 1; ++i)
        objects += '}';
    EXPECT_THROW(parse(objects), JsonParseError);
}

TEST(JsonParser, ParseFileMissingThrows)
{
    EXPECT_THROW(parseFile("/nonexistent/file.json"), JsonError);
}

// -------------------------------------------------------------- writer

TEST(JsonWriter, CompactRoundTrip)
{
    const JsonValue original = parse(
        R"({"a": 1, "b": [true, null, 2.5], "c": {"d": "e\nf"}})");
    const JsonValue reparsed = parse(write(original));
    EXPECT_TRUE(original == reparsed);
}

TEST(JsonWriter, PrettyRoundTrip)
{
    const JsonValue original =
        parse(R"({"a": [1, 2], "b": {"c": []}})");
    const std::string pretty = writePretty(original);
    EXPECT_NE(pretty.find('\n'), std::string::npos);
    EXPECT_TRUE(parse(pretty) == original);
}

TEST(JsonWriter, DoubleKeepsTypeOnRoundTrip)
{
    const JsonValue original = parse("[1, 1.0]");
    const JsonValue reparsed = parse(write(original));
    EXPECT_TRUE(reparsed.at(std::size_t{0}).isInt());
    EXPECT_TRUE(reparsed.at(std::size_t{1}).isDouble());
}

TEST(JsonWriter, EscapesControlCharacters)
{
    const std::string out = write(JsonValue(std::string("a\x01z")));
    EXPECT_EQ(out, "\"a\\u0001z\"");
    EXPECT_EQ(parse(out).asString(), "a\x01z");
}

TEST(JsonWriter, TinyDoublesSurvive)
{
    JsonValue value(2.5e-6);
    const JsonValue reparsed = parse(write(value));
    EXPECT_DOUBLE_EQ(reparsed.asDouble(), 2.5e-6);
}

}  // namespace
}  // namespace json
}  // namespace uqsim
