/**
 * @file
 * Unit tests for the randomness substrate: generator determinism,
 * distribution statistics (parameterized sweeps), histogram
 * distributions, and the JSON factory.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "uqsim/json/json_parser.h"
#include "uqsim/random/distribution_factory.h"
#include "uqsim/random/distributions.h"
#include "uqsim/random/histogram_distribution.h"
#include "uqsim/random/rng.h"
#include "uqsim/stats/summary.h"

namespace uqsim {
namespace random {
namespace {

// ------------------------------------------------------------------ Rng

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.nextU64() == b.nextU64())
            ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.nextDouble();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, OpenLeftNeverZero)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.nextDoubleOpenLeft(), 0.0);
}

TEST(Rng, DoubleMeanNearHalf)
{
    Rng rng(11);
    stats::Summary summary;
    for (int i = 0; i < 100000; ++i)
        summary.add(rng.nextDouble());
    EXPECT_NEAR(summary.mean(), 0.5, 0.01);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.nextBounded(7), 7u);
    EXPECT_EQ(rng.nextBounded(0), 0u);
    EXPECT_EQ(rng.nextBounded(1), 0u);
}

TEST(Rng, BoundedRoughlyUniform)
{
    Rng rng(5);
    int counts[5] = {0};
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.nextBounded(5)];
    for (int count : counts)
        EXPECT_NEAR(count, n / 5, n / 50);
}

TEST(Rng, BernoulliEdgesAndMean)
{
    Rng rng(9);
    EXPECT_FALSE(rng.nextBool(0.0));
    EXPECT_TRUE(rng.nextBool(1.0));
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.nextBool(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(13);
    stats::Summary summary;
    for (int i = 0; i < 200000; ++i)
        summary.add(rng.nextGaussian());
    EXPECT_NEAR(summary.mean(), 0.0, 0.02);
    EXPECT_NEAR(summary.stddev(), 1.0, 0.02);
}

TEST(RngStream, LabelsAreIndependent)
{
    RngStream a(1, "alpha"), b(1, "beta"), a2(1, "alpha");
    EXPECT_NE(a.derivedSeed(), b.derivedSeed());
    EXPECT_EQ(a.derivedSeed(), a2.derivedSeed());
    EXPECT_EQ(a.nextU64(), a2.nextU64());
}

TEST(RngStream, MasterSeedChangesStreams)
{
    RngStream a(1, "alpha"), b(2, "alpha");
    EXPECT_NE(a.derivedSeed(), b.derivedSeed());
}

// ---------------------------------------------------- distribution math

struct DistCase {
    const char* name;
    std::function<DistributionPtr()> make;
    double expectedMean;
    double tolerance;
};

class DistributionMeanTest : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributionMeanTest, EmpiricalMeanMatchesAnalytic)
{
    const DistCase& tc = GetParam();
    DistributionPtr dist = tc.make();
    EXPECT_NEAR(dist->mean(), tc.expectedMean,
                tc.expectedMean * 1e-9 + 1e-12);
    Rng rng(1234);
    stats::Summary summary;
    for (int i = 0; i < 200000; ++i) {
        const double sample = dist->sample(rng);
        EXPECT_GE(sample, 0.0);
        summary.add(sample);
    }
    EXPECT_NEAR(summary.mean(), tc.expectedMean, tc.tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    AllDistributions, DistributionMeanTest,
    ::testing::Values(
        DistCase{"deterministic",
                 [] {
                     return std::make_shared<
                         DeterministicDistribution>(0.005);
                 },
                 0.005, 1e-12},
        DistCase{"uniform",
                 [] {
                     return std::make_shared<UniformDistribution>(
                         0.001, 0.003);
                 },
                 0.002, 5e-5},
        DistCase{"exponential",
                 [] {
                     return std::make_shared<ExponentialDistribution>(
                         0.004);
                 },
                 0.004, 1e-4},
        DistCase{"lognormal",
                 [] {
                     return LogNormalDistribution::fromMeanCv(0.002,
                                                              1.0);
                 },
                 0.002, 1e-4},
        DistCase{"mixture",
                 [] {
                     return std::make_shared<MixtureDistribution>(
                         std::make_shared<DeterministicDistribution>(
                             0.001),
                         std::make_shared<DeterministicDistribution>(
                             0.009),
                         0.25);
                 },
                 0.003, 5e-5},
        DistCase{"scaled",
                 [] {
                     return std::make_shared<ScaledDistribution>(
                         std::make_shared<ExponentialDistribution>(
                             0.001),
                         3.0);
                 },
                 0.003, 1e-4}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
        return info.param.name;
    });

TEST(ExponentialDistribution, VarianceMatchesSquaredMean)
{
    ExponentialDistribution dist(2.0);
    Rng rng(77);
    stats::Summary summary;
    for (int i = 0; i < 200000; ++i)
        summary.add(dist.sample(rng));
    EXPECT_NEAR(summary.variance(), 4.0, 0.1);
}

TEST(LogNormalDistribution, CvIsRespected)
{
    auto dist = LogNormalDistribution::fromMeanCv(1.0, 0.5);
    Rng rng(31);
    stats::Summary summary;
    for (int i = 0; i < 300000; ++i)
        summary.add(dist->sample(rng));
    EXPECT_NEAR(summary.stddev() / summary.mean(), 0.5, 0.02);
}

TEST(BoundedParetoDistribution, SamplesWithinBounds)
{
    BoundedParetoDistribution dist(1e-4, 1.3, 1e-1);
    Rng rng(17);
    for (int i = 0; i < 20000; ++i) {
        const double sample = dist.sample(rng);
        EXPECT_GE(sample, 1e-4);
        EXPECT_LE(sample, 1e-1);
    }
}

TEST(BoundedParetoDistribution, MeanMatchesEmpirical)
{
    BoundedParetoDistribution dist(1.0, 2.0, 10.0);
    Rng rng(19);
    stats::Summary summary;
    for (int i = 0; i < 300000; ++i)
        summary.add(dist.sample(rng));
    EXPECT_NEAR(summary.mean(), dist.mean(), 0.02);
}

TEST(Distributions, InvalidParametersThrow)
{
    EXPECT_THROW(DeterministicDistribution(-1.0),
                 std::invalid_argument);
    EXPECT_THROW(UniformDistribution(2.0, 1.0), std::invalid_argument);
    EXPECT_THROW(ExponentialDistribution(0.0), std::invalid_argument);
    EXPECT_THROW(LogNormalDistribution(0.0, -1.0),
                 std::invalid_argument);
    EXPECT_THROW(BoundedParetoDistribution(1.0, 1.0, 0.5),
                 std::invalid_argument);
    EXPECT_THROW(MixtureDistribution(nullptr, nullptr, 0.5),
                 std::invalid_argument);
    EXPECT_THROW(ScaledDistribution(nullptr, 1.0),
                 std::invalid_argument);
    EXPECT_THROW(
        MixtureDistribution(
            std::make_shared<DeterministicDistribution>(1.0),
            std::make_shared<DeterministicDistribution>(1.0), 1.5),
        std::invalid_argument);
}

// ------------------------------------------------ histogram distribution

TEST(HistogramDistribution, RequiresValidBins)
{
    EXPECT_THROW(HistogramDistribution({}), std::invalid_argument);
    EXPECT_THROW(HistogramDistribution({{2.0, 1.0, 1.0}}),
                 std::invalid_argument);
    EXPECT_THROW(
        HistogramDistribution({{0.0, 2.0, 1.0}, {1.0, 3.0, 1.0}}),
        std::invalid_argument);
    EXPECT_THROW(HistogramDistribution({{0.0, 1.0, 0.0}}),
                 std::invalid_argument);
    EXPECT_THROW(HistogramDistribution({{0.0, 1.0, -1.0}}),
                 std::invalid_argument);
}

TEST(HistogramDistribution, SamplesWithinSupport)
{
    HistogramDistribution dist(
        {{1.0, 2.0, 1.0}, {2.0, 3.0, 2.0}, {5.0, 6.0, 1.0}});
    Rng rng(23);
    for (int i = 0; i < 20000; ++i) {
        const double sample = dist.sample(rng);
        EXPECT_GE(sample, 1.0);
        EXPECT_LT(sample, 6.0);
        EXPECT_FALSE(sample >= 3.0 && sample < 5.0)
            << "sampled inside a zero-weight gap: " << sample;
    }
}

TEST(HistogramDistribution, MeanAndCdf)
{
    HistogramDistribution dist({{0.0, 1.0, 1.0}, {1.0, 2.0, 3.0}});
    EXPECT_DOUBLE_EQ(dist.mean(), 0.25 * 0.5 + 0.75 * 1.5);
    EXPECT_DOUBLE_EQ(dist.cdf(0.0), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdf(1.0), 0.25);
    EXPECT_DOUBLE_EQ(dist.cdf(2.0), 1.0);
    EXPECT_NEAR(dist.cdf(1.5), 0.25 + 0.375, 1e-12);
}

TEST(HistogramDistribution, EmpiricalMeanMatches)
{
    HistogramDistribution dist({{0.0, 2.0, 1.0}, {2.0, 4.0, 1.0}});
    Rng rng(29);
    stats::Summary summary;
    for (int i = 0; i < 200000; ++i)
        summary.add(dist.sample(rng));
    EXPECT_NEAR(summary.mean(), 2.0, 0.02);
}

TEST(HistogramDistribution, FromSamplesApproximatesSource)
{
    ExponentialDistribution source(1.0);
    Rng rng(37);
    std::vector<double> samples;
    for (int i = 0; i < 50000; ++i)
        samples.push_back(source.sample(rng));
    auto dist = HistogramDistribution::fromSamples(samples, 200);
    EXPECT_NEAR(dist->mean(), 1.0, 0.1);
    Rng rng2(41);
    stats::Summary resampled;
    for (int i = 0; i < 50000; ++i)
        resampled.add(dist->sample(rng2));
    EXPECT_NEAR(resampled.mean(), 1.0, 0.1);
}

TEST(HistogramDistribution, FromSamplesDegenerate)
{
    auto dist =
        HistogramDistribution::fromSamples({3.0, 3.0, 3.0}, 10);
    Rng rng(1);
    EXPECT_NEAR(dist->sample(rng), 3.0, 1e-9);
}

TEST(HistogramDistribution, ScaledShiftsSupport)
{
    HistogramDistribution dist({{1.0, 2.0, 1.0}});
    auto doubled = dist.scaled(2.0);
    Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const double sample = doubled->sample(rng);
        EXPECT_GE(sample, 2.0);
        EXPECT_LT(sample, 4.0);
    }
    EXPECT_DOUBLE_EQ(doubled->mean(), dist.mean() * 2.0);
}

// ----------------------------------------------------------- factory

TEST(DistributionFactory, BuildsEveryType)
{
    Rng rng(3);
    auto check = [&](const char* spec, double expected_mean,
                     double tol) {
        DistributionPtr dist =
            makeDistribution(json::parse(spec));
        ASSERT_NE(dist, nullptr) << spec;
        EXPECT_NEAR(dist->mean(), expected_mean, tol) << spec;
    };
    check(R"({"type": "deterministic", "value": 0.002})", 0.002, 1e-12);
    check(R"({"type": "uniform", "low": 0.0, "high": 0.004})", 0.002,
          1e-12);
    check(R"({"type": "exponential", "mean": 0.003})", 0.003, 1e-12);
    check(R"({"type": "lognormal", "mean": 0.002, "cv": 0.5})", 0.002,
          1e-9);
    check(R"({"type": "mixture",
              "a": {"type": "deterministic", "value": 0.001},
              "b": {"type": "deterministic", "value": 0.003},
              "p_b": 0.5})",
          0.002, 1e-12);
    check(R"({"type": "scaled",
              "base": {"type": "deterministic", "value": 0.001},
              "factor": 4})",
          0.004, 1e-12);
    check(R"({"type": "histogram", "bins": [[0, 2, 1], [2, 4, 1]]})",
          2.0, 1e-12);
}

TEST(DistributionFactory, BareNumberIsDeterministic)
{
    DistributionPtr dist = makeDistribution(json::parse("0.0005"));
    Rng rng(1);
    EXPECT_DOUBLE_EQ(dist->sample(rng), 0.0005);
}

TEST(DistributionFactory, UnknownTypeThrows)
{
    EXPECT_THROW(makeDistribution(json::parse(R"({"type": "zipf"})")),
                 json::JsonError);
    EXPECT_THROW(
        makeDistribution(json::parse(R"({"type": "exponential"})")),
        json::JsonError);
    EXPECT_THROW(makeDistribution(json::parse(
                     R"({"type": "histogram", "bins": [[0, 1]]})")),
                 json::JsonError);
}

TEST(DistributionFactory, SpecHelpersRoundTrip)
{
    Rng rng(5);
    EXPECT_NEAR(makeDistribution(exponentialSpec(0.01))->mean(), 0.01,
                1e-12);
    EXPECT_NEAR(makeDistribution(deterministicSpec(0.02))->mean(), 0.02,
                1e-12);
    EXPECT_NEAR(makeDistribution(lognormalMeanCvSpec(0.03, 1.0))->mean(),
                0.03, 1e-9);
    EXPECT_NEAR(
        makeDistribution(histogramSpec({{0.0, 2.0, 1.0}}))->mean(),
        1.0, 1e-12);
}

}  // namespace
}  // namespace random
}  // namespace uqsim
