/**
 * @file
 * Property-style randomized tests: invariants that must hold for
 * any workload, checked under randomized operation sequences and
 * parameter sweeps.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <vector>

#include "uqsim/random/distribution_factory.h"

#include "uqsim/core/app/dispatcher.h"
#include "uqsim/core/sim/simulation.h"
#include "uqsim/core/service/stage_queue.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/applications.h"
#include "uqsim/models/stage_presets.h"
#include "uqsim/random/histogram_distribution.h"

namespace uqsim {
namespace {

// ----------------------------------------------- queue conservation

struct QueueCase {
    const char* name;
    QueueType type;
    int batchLimit;
};

class QueueConservationTest
    : public ::testing::TestWithParam<QueueCase> {};

TEST_P(QueueConservationTest, RandomizedPushPopConservesJobs)
{
    const QueueCase& tc = GetParam();
    ConnectionTable connections;
    StageConfig config;
    config.queueType = tc.type;
    config.batching = tc.batchLimit > 0;
    config.batchLimit = tc.batchLimit;
    auto queue = StageQueue::create(config, &connections);
    JobFactory factory;
    random::Rng rng(2024);

    std::map<JobId, int> pushed;  // id -> connection
    std::map<JobId, bool> popped;
    std::size_t in_queue = 0;
    std::map<ConnectionId, std::deque<JobId>> per_conn_order;

    for (int step = 0; step < 5000; ++step) {
        const bool do_push = rng.nextBool(0.55) || in_queue == 0;
        if (do_push) {
            const auto conn =
                static_cast<ConnectionId>(rng.nextBounded(12));
            JobPtr job = factory.createRoot(0, 64);
            job->connectionId = conn;
            pushed[job->id] = static_cast<int>(conn);
            per_conn_order[conn].push_back(job->id);
            queue->push(std::move(job));
            ++in_queue;
        } else {
            const auto batch = queue->popBatch();
            for (const JobPtr& job : batch) {
                // Never pop a job twice, never invent jobs.
                ASSERT_TRUE(pushed.count(job->id));
                ASSERT_FALSE(popped[job->id]);
                popped[job->id] = true;
                // FIFO per connection.
                auto& order = per_conn_order[job->connectionId];
                ASSERT_FALSE(order.empty());
                ASSERT_EQ(order.front(), job->id);
                order.pop_front();
            }
            ASSERT_LE(batch.size(), in_queue);
            in_queue -= batch.size();
        }
        ASSERT_EQ(queue->size(), in_queue);
        ASSERT_EQ(queue->hasEligible(), in_queue > 0);
    }
    // Drain and verify total conservation.
    while (queue->hasEligible()) {
        for (const JobPtr& job : queue->popBatch())
            popped[job->id] = true;
    }
    std::size_t popped_count = 0;
    for (const auto& [id, was_popped] : popped)
        popped_count += was_popped ? 1 : 0;
    EXPECT_EQ(popped_count, pushed.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllDisciplines, QueueConservationTest,
    ::testing::Values(QueueCase{"single", QueueType::Single, 0},
                      QueueCase{"single_batched", QueueType::Single,
                                4},
                      QueueCase{"socket", QueueType::Socket, 4},
                      QueueCase{"epoll", QueueType::Epoll, 8}),
    [](const ::testing::TestParamInfo<QueueCase>& info) {
        return info.param.name;
    });

TEST(QueueBlockingProperty, NonOwnerJobsNeverEscapeBlockedConns)
{
    ConnectionTable connections;
    StageConfig config;
    config.queueType = QueueType::Epoll;
    config.batching = true;
    config.batchLimit = 8;
    auto queue = StageQueue::create(config, &connections);
    JobFactory factory;
    random::Rng rng(77);
    std::map<ConnectionId, JobId> owner;

    for (int step = 0; step < 4000; ++step) {
        const double action = rng.nextDouble();
        const auto conn =
            static_cast<ConnectionId>(rng.nextBounded(6));
        if (action < 0.5) {
            JobPtr job = factory.createRoot(0, 64);
            job->connectionId = conn;
            queue->push(std::move(job));
        } else if (action < 0.65) {
            const JobId root = factory.createRoot(0, 1)->rootId;
            connections.block(conn, root);
            if (!owner.count(conn))
                owner[conn] = connections.blockOwner(conn);
        } else if (action < 0.8) {
            if (owner.count(conn)) {
                connections.unblock(conn, owner[conn]);
                owner.erase(conn);
                if (connections.isBlocked(conn))
                    owner[conn] = connections.blockOwner(conn);
            }
        } else {
            for (const JobPtr& job : queue->popBatch()) {
                const ConnectionId c = job->connectionId;
                if (connections.isBlocked(c)) {
                    EXPECT_EQ(job->rootId,
                              connections.blockOwner(c))
                        << "non-owner escaped blocked connection";
                }
            }
        }
    }
}

// ------------------------------------------- end-to-end conservation

class LoadSweepInvariantTest
    : public ::testing::TestWithParam<double> {};

TEST_P(LoadSweepInvariantTest, RequestsConservedAtAnyLoad)
{
    // At any offered load (below or above saturation), requests are
    // conserved: started == completed + still-active, and nothing
    // leaks.
    models::TwoTierParams params;
    params.run.qps = GetParam();
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 1.0;
    auto simulation =
        Simulation::fromBundle(models::twoTierBundle(params));
    simulation->run();
    Dispatcher& dispatcher = simulation->dispatcher();
    EXPECT_EQ(dispatcher.requestsStarted(),
              dispatcher.requestsCompleted() +
                  dispatcher.activeRequests());
    EXPECT_EQ(dispatcher.leakedHops(), 0u);
    EXPECT_EQ(dispatcher.leakedBlocks(), 0u);
    // Blocks outstanding must belong to active requests only.
    EXPECT_LE(dispatcher.blocks().totalPending(),
              dispatcher.activeRequests());
}

INSTANTIATE_TEST_SUITE_P(Loads, LoadSweepInvariantTest,
                         ::testing::Values(5000.0, 40000.0, 70000.0,
                                           120000.0),
                         [](const ::testing::TestParamInfo<double>&
                                info) {
                             return "qps" +
                                    std::to_string(static_cast<int>(
                                        info.param));
                         });

TEST(FanoutInvariant, EveryLeafServesEveryCompletedRequest)
{
    models::FanoutParams params;
    params.run.qps = 3000.0;
    params.run.warmupSeconds = 0.0;
    params.run.durationSeconds = 1.0;
    params.fanout = 8;
    auto simulation =
        Simulation::fromBundle(models::fanoutBundle(params));
    simulation->run();
    const auto completed =
        simulation->dispatcher().requestsCompleted();
    EXPECT_GT(completed, 0u);
    for (int i = 0; i < params.fanout; ++i) {
        // Each leaf processed at least every completed request (it
        // may also have processed requests still in flight).
        EXPECT_GE(simulation->deployment()
                      .instance("nginx_web", i)
                      .completedJobs(),
                  completed)
            << "leaf " << i;
    }
}

// ------------------------------------------------ histogram file I/O

TEST(HistogramFile, RoundTripThroughDisk)
{
    const std::string path = testing::TempDir() + "uqsim_hist.txt";
    {
        std::ofstream out(path);
        out << "# profiled memcached processing time (s)\n";
        out << "0.0 1e-05 10\n";
        out << "1e-05 2e-05 30\n";
        out << "\n";
        out << "2e-05 4e-05 5\n";
    }
    auto dist = random::HistogramDistribution::fromFile(path);
    EXPECT_EQ(dist->bins().size(), 3u);
    EXPECT_NEAR(dist->mean(),
                (10 * 0.5e-5 + 30 * 1.5e-5 + 5 * 3e-5) / 45.0, 1e-12);
    std::remove(path.c_str());
}

TEST(HistogramFile, UsableFromServiceTimeSpec)
{
    const std::string path = testing::TempDir() + "uqsim_hist2.txt";
    {
        std::ofstream out(path);
        out << "1e-05 3e-05 1\n";
    }
    json::JsonValue spec = json::JsonValue::makeObject();
    spec.asObject()["type"] = "histogram_file";
    spec.asObject()["path"] = path;
    auto dist = random::makeDistribution(spec);
    EXPECT_NEAR(dist->mean(), 2e-5, 1e-12);
    std::remove(path.c_str());
}

TEST(HistogramFile, ErrorsAreDescriptive)
{
    EXPECT_THROW(
        random::HistogramDistribution::fromFile("/no/such/file"),
        std::runtime_error);
    const std::string path = testing::TempDir() + "uqsim_bad.txt";
    {
        std::ofstream out(path);
        out << "0.0 garbage\n";
    }
    EXPECT_THROW(random::HistogramDistribution::fromFile(path),
                 std::runtime_error);
    std::remove(path.c_str());
}

// ----------------------------------- resilience accounting properties

using json::JsonArray;
using json::JsonValue;

/** One point in the (seed x policy) metamorphic grid. */
struct ResilienceCase {
    const char* name;
    std::uint64_t seed;
    /** Edge policy JSON for front->leaf ("" = none). */
    const char* policy;
    /** Retry budget declared by the policy (0 when none). */
    std::uint64_t retryBudget;
    /** Hedge budget declared by the policy (0 when none). */
    std::uint64_t hedgeBudget;
};

/** Front tier fanning to three leaf replicas, one degraded 20x for
 *  the whole run, under the case's resilience policy. */
ConfigBundle
resilienceBundle(const ResilienceCase& tc)
{
    ConfigBundle bundle;
    bundle.options.seed = tc.seed;
    bundle.options.warmupSeconds = 0.1;
    bundle.options.durationSeconds = 0.8;
    bundle.machines = json::parse(
        R"({"wire_latency_us": 5.0, "loopback_latency_us": 1.0,)"
        R"( "machines": [{"name": "front", "cores": 4, "irq_cores": 0},)"
        R"( {"name": "leaf0", "cores": 2, "irq_cores": 0},)"
        R"( {"name": "leaf1", "cores": 2, "irq_cores": 0},)"
        R"( {"name": "leaf2", "cores": 2, "irq_cores": 0}]})");
    {
        JsonValue front = JsonValue::makeObject();
        front.asObject()["service_name"] = "front";
        front.asObject()["execution_model"] = "simple";
        JsonArray stages;
        stages.push_back(
            models::processingStage(0, "proc", models::detUs(5.0)));
        front.asObject()["stages"] = JsonValue(std::move(stages));
        JsonArray paths;
        paths.push_back(models::pathJson(0, "serve", {0}));
        front.asObject()["paths"] = JsonValue(std::move(paths));
        bundle.services.push_back(std::move(front));
        JsonValue leaf = JsonValue::makeObject();
        leaf.asObject()["service_name"] = "leaf";
        leaf.asObject()["execution_model"] = "simple";
        JsonArray leafStages;
        leafStages.push_back(
            models::processingStage(0, "proc", models::expUs(100.0)));
        leaf.asObject()["stages"] = JsonValue(std::move(leafStages));
        JsonArray leafPaths;
        leafPaths.push_back(models::pathJson(0, "serve", {0}));
        leaf.asObject()["paths"] = JsonValue(std::move(leafPaths));
        bundle.services.push_back(std::move(leaf));
    }
    std::string graph =
        R"({"services": [{"service": "front", "connection_pools":)"
        R"( {"leaf": 64},)";
    if (tc.policy[0] != '\0')
        graph += R"( "policies": {"leaf": )" +
                 std::string(tc.policy) + "},";
    graph +=
        R"( "instances": [{"machine": "front", "threads": 4}]},)"
        R"( {"service": "leaf", "lb_policy": "round_robin",)"
        R"( "instances": [{"machine": "leaf0", "threads": 2},)"
        R"( {"machine": "leaf1", "threads": 2},)"
        R"( {"machine": "leaf2", "threads": 2}]}]})";
    bundle.graph = json::parse(graph);
    bundle.paths = json::parse(
        R"({"paths": [{"probability": 1.0, "nodes":)"
        R"( [{"node_id": 0, "service": "front", "path": "serve",)"
        R"( "children": [1]},)"
        R"( {"node_id": 1, "service": "leaf", "path": "serve",)"
        R"( "children": [2]},)"
        R"( {"node_id": 2, "service": "front", "path": "serve",)"
        R"( "children": []}]}]})");
    bundle.client = json::parse(
        R"({"front_service": "front", "connections": 64,)"
        R"( "arrival": "poisson", "load": {"type": "constant",)"
        R"( "qps": 600.0}, "request_bytes": {"type": "deterministic",)"
        R"( "value": 128.0}})");
    bundle.faults = json::parse(
        R"({"faults": [{"type": "slow", "instance": "leaf.0",)"
        R"( "start_s": 0.05, "end_s": 10.0, "factor": 20.0}]})");
    return bundle;
}

class ResilienceAccountingTest
    : public ::testing::TestWithParam<ResilienceCase> {};

TEST_P(ResilienceAccountingTest, CountersStayWithinDeclaredBudgets)
{
    const ResilienceCase& tc = GetParam();
    auto simulation = Simulation::fromBundle(resilienceBundle(tc));
    const RunReport report = simulation->run();
    Dispatcher& dispatcher = simulation->dispatcher();
    const std::uint64_t started = dispatcher.requestsStarted();
    ASSERT_GT(started, 0u);

    // Mitigation never exceeds its declared budget: each request may
    // issue at most `retries` resends and `hedge_max` hedges.
    EXPECT_LE(dispatcher.retriesSent(), tc.retryBudget * started);
    EXPECT_LE(dispatcher.hedgesSent(), tc.hedgeBudget * started);
    if (tc.retryBudget == 0)
        EXPECT_EQ(dispatcher.retriesSent(), 0u);
    if (tc.hedgeBudget == 0)
        EXPECT_EQ(dispatcher.hedgesSent(), 0u);

    // Availability is a fraction of terminal outcomes.
    EXPECT_GE(report.availability, 0.0);
    EXPECT_LE(report.availability, 1.0);

    // Goodput never exceeds throughput: completions are a subset of
    // started requests, terminal outcomes never exceed admissions.
    EXPECT_LE(dispatcher.requestsCompleted(), started);
    EXPECT_LE(dispatcher.requestsCompleted() +
                  dispatcher.requestsFailed() +
                  dispatcher.requestsShed(),
              started);
    EXPECT_LE(report.completed, report.generated);

    // Conservation ledger: every admitted request is in exactly one
    // terminal (or still-active) bucket, and nothing leaks.
    EXPECT_EQ(started, dispatcher.requestsCompleted() +
                           dispatcher.requestsFailed() +
                           dispatcher.requestsShed() +
                           dispatcher.activeRequests());
    EXPECT_EQ(dispatcher.leakedHops(), 0u);
    EXPECT_EQ(dispatcher.leakedBlocks(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndPolicies, ResilienceAccountingTest,
    ::testing::Values(
        ResilienceCase{"none_s3", 3, "", 0, 0},
        ResilienceCase{"none_s29", 29, "", 0, 0},
        ResilienceCase{"retry_s3", 3,
                       R"({"timeout_s": 0.002, "retries": 2,)"
                       R"( "backoff_base_s": 0.0002, "jitter": 0.2})",
                       2, 0},
        ResilienceCase{"retry_s11", 11,
                       R"({"timeout_s": 0.002, "retries": 2,)"
                       R"( "backoff_base_s": 0.0002, "jitter": 0.2})",
                       2, 0},
        ResilienceCase{"hedge_s11", 11,
                       R"({"timeout_s": 0.02, "retries": 1,)"
                       R"( "hedge_delay_s": 0.001, "hedge_max": 1})",
                       1, 1},
        ResilienceCase{"hedge_s29", 29,
                       R"({"timeout_s": 0.02, "retries": 1,)"
                       R"( "hedge_delay_s": 0.001, "hedge_max": 1})",
                       1, 1}),
    [](const ::testing::TestParamInfo<ResilienceCase>& info) {
        return info.param.name;
    });

TEST(ResilienceAccounting, ReportCountersMatchDispatcherLedger)
{
    // The externally visible report is a faithful view of the
    // dispatcher ledger, whatever the policy did during the run.
    ResilienceCase tc{"retry", 11,
                      R"({"timeout_s": 0.002, "retries": 2,)"
                      R"( "backoff_base_s": 0.0002})",
                      2, 0};
    auto simulation = Simulation::fromBundle(resilienceBundle(tc));
    const RunReport report = simulation->run();
    Dispatcher& dispatcher = simulation->dispatcher();
    EXPECT_EQ(report.retries, dispatcher.retriesSent());
    EXPECT_EQ(report.hedges, dispatcher.hedgesSent());
    EXPECT_EQ(report.failed, dispatcher.requestsFailed());
    EXPECT_EQ(report.shed, dispatcher.requestsShed());
    EXPECT_EQ(report.breakerTrips, dispatcher.breakerTrips());
}

// --------------------------------------------------- multiple clients

TEST(MultiClient, ArrayClientJsonCreatesSeveralGenerators)
{
    models::ThriftEchoParams params;
    params.run.qps = 4000.0;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 1.0;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    // Split the load across two client objects.
    json::JsonValue second = bundle.client;
    bundle.client.asObject()["load"].asObject()["qps"] = 2500.0;
    second.asObject()["load"].asObject()["qps"] = 1500.0;
    json::JsonArray clients;
    clients.push_back(bundle.client);
    clients.push_back(second);
    bundle.client = json::JsonValue(std::move(clients));
    auto simulation = Simulation::fromBundle(bundle);
    const RunReport report = simulation->run();
    EXPECT_EQ(simulation->clients().size(), 2u);
    EXPECT_NEAR(report.achievedQps, 4000.0, 400.0);
    EXPECT_NEAR(report.offeredQps, 4000.0, 1e-9);
}

}  // namespace
}  // namespace uqsim
