/**
 * @file
 * Tests for the power-management subsystem: bucket learning state,
 * Algorithm 1's decision behavior, and the energy model.
 */

#include <gtest/gtest.h>

#include "uqsim/power/energy_model.h"
#include "uqsim/power/power_manager.h"
#include "uqsim/power/qos_bucket.h"

namespace uqsim {
namespace power {
namespace {

// ----------------------------------------------------------- QosBucket

TEST(TierTuple, RelaxationOrder)
{
    EXPECT_TRUE(noMoreRelaxedThan({1.0, 2.0}, {1.0, 2.0}));
    EXPECT_TRUE(noMoreRelaxedThan({0.5, 2.0}, {1.0, 2.0}));
    EXPECT_FALSE(noMoreRelaxedThan({1.5, 2.0}, {1.0, 2.5}));
    EXPECT_THROW(noMoreRelaxedThan({1.0}, {1.0, 2.0}),
                 std::invalid_argument);
}

TEST(QosBucket, InsertAndSample)
{
    QosBucket bucket(0.0, 1e-3);
    EXPECT_TRUE(bucket.empty());
    EXPECT_TRUE(bucket.insert({1e-4, 2e-4}));
    EXPECT_EQ(bucket.tupleCount(), 1u);
    random::Rng rng(1);
    EXPECT_EQ(bucket.sampleTuple(rng), (TierTuple{1e-4, 2e-4}));
}

TEST(QosBucket, RejectsTuplesMoreRelaxedThanFailures)
{
    QosBucket bucket(0.0, 1e-3);
    bucket.recordFailure({2e-4, 3e-4});
    // More relaxed than the failure in every component: rejected.
    EXPECT_FALSE(bucket.insert({3e-4, 4e-4}));
    // Tighter in one component: accepted.
    EXPECT_TRUE(bucket.insert({1e-4, 5e-4}));
    EXPECT_EQ(bucket.failureCount(), 1u);
}

TEST(QosBucket, FailureInvalidatesStoredTuples)
{
    QosBucket bucket(0.0, 1e-3);
    EXPECT_TRUE(bucket.insert({3e-4, 4e-4}));
    EXPECT_TRUE(bucket.insert({1e-4, 1e-4}));
    bucket.recordFailure({2e-4, 2e-4});
    // {3e-4, 4e-4} is at least as relaxed as the failure: dropped.
    EXPECT_EQ(bucket.tupleCount(), 1u);
}

TEST(QosBucket, PreferenceDynamics)
{
    QosBucket bucket(0.0, 1.0);
    const double initial = bucket.preference();
    bucket.reward();
    EXPECT_GT(bucket.preference(), initial);
    bucket.penalize();
    bucket.penalize();
    EXPECT_LT(bucket.preference(), initial);
    for (int i = 0; i < 200; ++i)
        bucket.reward();
    const double capped = bucket.preference();
    bucket.reward();
    EXPECT_DOUBLE_EQ(bucket.preference(), capped);  // capped
    for (int i = 0; i < 200; ++i)
        bucket.penalize();
    EXPECT_GT(bucket.preference(), 0.0);  // floored
}

TEST(QosBucket, SampleOnEmptyThrows)
{
    QosBucket bucket(0.0, 1.0);
    random::Rng rng(1);
    EXPECT_THROW(bucket.sampleTuple(rng), std::logic_error);
}

TEST(QosBucketTable, Classify)
{
    QosBucketTable table(10e-3, 10);
    EXPECT_EQ(table.size(), 10u);
    EXPECT_EQ(table.classify(0.5e-3), 0u);
    EXPECT_EQ(table.classify(9.5e-3), 9u);
    // Values at/over the target land in the last bucket.
    EXPECT_EQ(table.classify(50e-3), 9u);
}

TEST(QosBucketTable, ChooseSkipsEmptyBuckets)
{
    QosBucketTable table(10e-3, 4);
    random::Rng rng(5);
    EXPECT_EQ(table.choose(rng), table.size());  // all empty
    table.bucket(2).insert({1e-3});
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(table.choose(rng), 2u);
}

TEST(QosBucketTable, ChooseWeightedByPreference)
{
    QosBucketTable table(10e-3, 2);
    table.bucket(0).insert({1e-3});
    table.bucket(1).insert({2e-3});
    for (int i = 0; i < 6; ++i)
        table.bucket(1).reward();
    for (int i = 0; i < 3; ++i)
        table.bucket(0).penalize();
    random::Rng rng(9);
    int hi = 0;
    for (int i = 0; i < 2000; ++i)
        hi += table.choose(rng) == 1 ? 1 : 0;
    EXPECT_GT(hi, 1600);
}

TEST(QosBucketTable, InvalidParamsThrow)
{
    EXPECT_THROW(QosBucketTable(0.0, 4), std::invalid_argument);
    EXPECT_THROW(QosBucketTable(1e-3, 0), std::invalid_argument);
    EXPECT_THROW(QosBucket(1.0, 0.5), std::invalid_argument);
}

// --------------------------------------------------------- PowerManager

struct ManagerFixture {
    explicit ManagerFixture(double interval = 0.1)
        : sim(3),
          frontDomain(hw::DvfsTable::paperDefault(), "front"),
          backDomain(hw::DvfsTable::paperDefault(), "back")
    {
        PowerManagerConfig config;
        config.intervalSeconds = interval;
        config.qosTargetSeconds = 5e-3;
        config.minWindowSamples = 10;
        manager = std::make_unique<PowerManager>(
            sim, config,
            std::vector<TierControl>{{"front", {&frontDomain}},
                                     {"back", {&backDomain}}});
    }

    /** Feeds a window's worth of latencies (seconds). */
    void
    feedWindow(double end_to_end, double front, double back)
    {
        for (int i = 0; i < 50; ++i) {
            manager->noteEndToEnd(end_to_end);
            manager->noteTierLatency("front", front);
            manager->noteTierLatency("back", back);
        }
    }

    Simulator sim;
    hw::DvfsDomain frontDomain;
    hw::DvfsDomain backDomain;
    std::unique_ptr<PowerManager> manager;
};

TEST(PowerManager, SlowsDownOneTierWhenQosMet)
{
    ManagerFixture fx;
    fx.manager->start();
    // Comfortably under the 5 ms target with huge slack everywhere.
    fx.feedWindow(1e-3, 0.4e-3, 0.2e-3);
    fx.sim.run(secondsToSimTime(0.1));
    EXPECT_EQ(fx.manager->windows(), 1u);
    EXPECT_EQ(fx.manager->violations(), 0u);
    // Exactly one tier slowed one step.
    const int steps_down =
        (fx.frontDomain.atNominal() ? 0 : 1) +
        (fx.backDomain.atNominal() ? 0 : 1);
    EXPECT_EQ(steps_down, 1);
}

TEST(PowerManager, SpeedsUpOnViolation)
{
    ManagerFixture fx;
    // Start both tiers slow.
    fx.frontDomain.setFrequency(1.2);
    fx.backDomain.setFrequency(1.2);
    fx.manager->start();
    fx.feedWindow(20e-3, 15e-3, 5e-3);  // violating
    fx.sim.run(secondsToSimTime(0.1));
    EXPECT_EQ(fx.manager->violations(), 1u);
    // Both tiers exceed their (even-split 2.5ms) targets: sped up.
    EXPECT_GT(fx.frontDomain.frequency(), 1.2);
    EXPECT_GT(fx.backDomain.frequency(), 1.2);
}

TEST(PowerManager, EmptyWindowsAreSkipped)
{
    ManagerFixture fx;
    fx.manager->start();
    fx.sim.run(secondsToSimTime(0.55));
    EXPECT_EQ(fx.manager->windows(), 0u);
    EXPECT_TRUE(fx.frontDomain.atNominal());
}

TEST(PowerManager, LearnsBucketsOverTime)
{
    ManagerFixture fx;
    fx.manager->start();
    std::function<void()> feed = [&] {
        fx.feedWindow(2e-3, 1.2e-3, 0.6e-3);
        fx.sim.scheduleAfter(secondsToSimTime(0.1), feed);
    };
    fx.sim.scheduleAt(0, feed);
    fx.sim.run(secondsToSimTime(2.0));
    EXPECT_GT(fx.manager->windows(), 15u);
    // The 2 ms bucket accumulated tuples.
    const auto& table = fx.manager->buckets();
    EXPECT_FALSE(table.bucket(table.classify(2e-3)).empty());
    // Frequencies have been lowered (energy saved) without
    // violations.
    EXPECT_EQ(fx.manager->violations(), 0u);
    EXPECT_TRUE(fx.frontDomain.atLowest() || fx.backDomain.atLowest() ||
                !fx.frontDomain.atNominal() ||
                !fx.backDomain.atNominal());
}

TEST(PowerManager, SeriesAndRatesExposed)
{
    ManagerFixture fx;
    fx.manager->start();
    fx.feedWindow(6e-3, 3e-3, 3e-3);  // violation
    fx.sim.run(secondsToSimTime(0.1));
    EXPECT_DOUBLE_EQ(fx.manager->violationRate(), 1.0);
    EXPECT_EQ(fx.manager->tailSeries().size(), 1u);
    EXPECT_NEAR(fx.manager->tailSeries().points()[0].value, 6.0,
                1e-9);
    EXPECT_GE(fx.manager->frequencySeries("front").size(), 1u);
    EXPECT_THROW(fx.manager->frequencySeries("nope"),
                 std::out_of_range);
}

TEST(PowerManager, ConstructorValidation)
{
    Simulator sim;
    PowerManagerConfig config;
    EXPECT_THROW(PowerManager(sim, config, {}),
                 std::invalid_argument);
    hw::DvfsDomain domain(hw::DvfsTable::paperDefault());
    config.intervalSeconds = 0.0;
    EXPECT_THROW(PowerManager(
                     sim, config,
                     std::vector<TierControl>{{"t", {&domain}}}),
                 std::invalid_argument);
    config.intervalSeconds = 0.1;
    EXPECT_THROW(
        PowerManager(sim, config,
                     std::vector<TierControl>{{"t", {}}}),
        std::invalid_argument);
}

// --------------------------------------------------------- EnergyModel

TEST(EnergyTracker, NominalPower)
{
    Simulator sim;
    hw::DvfsDomain domain(hw::DvfsTable::paperDefault());
    EnergyTracker tracker(sim, domain, 4);
    // 4 cores x (2 + 8) W at nominal.
    EXPECT_DOUBLE_EQ(tracker.currentWatts(), 40.0);
    EXPECT_DOUBLE_EQ(tracker.nominalWatts(), 40.0);
}

TEST(EnergyTracker, CubicScalingOnStepDown)
{
    Simulator sim;
    hw::DvfsDomain domain(hw::DvfsTable({1.3, 2.6}));
    EnergyTracker tracker(sim, domain, 1);
    domain.stepDown();
    // 2 + 8 * 0.5^3 = 3 W.
    EXPECT_DOUBLE_EQ(tracker.currentWatts(), 3.0);
}

TEST(EnergyTracker, IntegratesAcrossChanges)
{
    Simulator sim;
    hw::DvfsDomain domain(hw::DvfsTable({1.3, 2.6}));
    EnergyTracker tracker(sim, domain, 1);
    sim.scheduleAt(kSecond, [&] { domain.stepDown(); });
    sim.scheduleAt(2 * kSecond, [] {});
    sim.run();
    // 1s at 10W + 1s at 3W = 13 J; nominal would be 20 J.
    EXPECT_NEAR(tracker.consumedJoules(), 13.0, 1e-6);
    EXPECT_NEAR(tracker.nominalJoules(), 20.0, 1e-6);
    EXPECT_NEAR(tracker.savingsFraction(), 0.35, 1e-6);
}

TEST(EnergyTracker, InvalidCoresThrow)
{
    Simulator sim;
    hw::DvfsDomain domain(hw::DvfsTable::paperDefault());
    EXPECT_THROW(EnergyTracker(sim, domain, 0),
                 std::invalid_argument);
}

}  // namespace
}  // namespace power
}  // namespace uqsim
