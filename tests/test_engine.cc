/**
 * @file
 * Unit tests for the DES engine: time, events, queue ordering,
 * cancellation, and the simulator run loop.
 */

#include <gtest/gtest.h>

#include <vector>

#include "uqsim/core/engine/event_queue.h"
#include "uqsim/core/engine/simulator.h"

namespace uqsim {
namespace {

// -------------------------------------------------------------- SimTime

TEST(SimTime, Conversions)
{
    EXPECT_EQ(secondsToSimTime(1.0), kSecond);
    EXPECT_EQ(secondsToSimTime(0.001), kMillisecond);
    EXPECT_EQ(secondsToSimTime(2.5e-6), 2500 * kNanosecond);
    EXPECT_DOUBLE_EQ(simTimeToSeconds(kSecond), 1.0);
    EXPECT_DOUBLE_EQ(simTimeToMillis(kSecond), 1000.0);
    EXPECT_DOUBLE_EQ(simTimeToMicros(kMillisecond), 1000.0);
}

TEST(SimTime, RoundsToNearestTick)
{
    EXPECT_EQ(secondsToSimTime(1.4e-9), 1);
    EXPECT_EQ(secondsToSimTime(1.6e-9), 2);
    EXPECT_EQ(secondsToSimTime(0.0), 0);
}

TEST(SimTime, Formatting)
{
    EXPECT_EQ(formatSimTime(500), "500ns");
    EXPECT_NE(formatSimTime(12 * kMicrosecond).find("us"),
              std::string::npos);
    EXPECT_NE(formatSimTime(3 * kMillisecond).find("ms"),
              std::string::npos);
    EXPECT_NE(formatSimTime(2 * kSecond).find("s"), std::string::npos);
}

// ------------------------------------------------------------ EventQueue

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    auto make = [&](int id) {
        return std::make_shared<CallbackEvent>(
            [&order, id]() { order.push_back(id); });
    };
    queue.schedule(make(3), 30);
    queue.schedule(make(1), 10);
    queue.schedule(make(2), 20);
    while (!queue.empty())
        queue.pop()->execute();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesAreFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i) {
        queue.schedule(std::make_shared<CallbackEvent>(
                           [&order, i]() { order.push_back(i); }),
                       100);
    }
    while (!queue.empty())
        queue.pop()->execute();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue queue;
    EXPECT_EQ(queue.nextTime(), kSimTimeMax);
    queue.schedule(std::make_shared<CallbackEvent>([] {}), 42);
    EXPECT_EQ(queue.nextTime(), 42);
}

TEST(EventQueue, CancellationDropsEvent)
{
    EventQueue queue;
    bool fired = false;
    EventHandle handle = queue.schedule(
        std::make_shared<CallbackEvent>([&] { fired = true; }), 10);
    EXPECT_TRUE(handle.pending());
    EXPECT_TRUE(handle.cancel());
    EXPECT_FALSE(handle.pending());
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.pop(), nullptr);
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelledBehindLiveEvent)
{
    EventQueue queue;
    bool live_fired = false;
    queue.schedule(
        std::make_shared<CallbackEvent>([&] { live_fired = true; }), 5);
    EventHandle handle =
        queue.schedule(std::make_shared<CallbackEvent>([] {}), 10);
    handle.cancel();
    EXPECT_FALSE(queue.empty());
    queue.pop()->execute();
    EXPECT_TRUE(live_fired);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, HandleAfterExecutionIsNotPending)
{
    EventQueue queue;
    EventHandle handle =
        queue.schedule(std::make_shared<CallbackEvent>([] {}), 1);
    queue.pop()->execute();
    EXPECT_FALSE(handle.pending());
    EXPECT_FALSE(handle.cancel());
}

TEST(EventQueue, NullEventThrows)
{
    EventQueue queue;
    EXPECT_THROW(queue.schedule(nullptr, 0), std::invalid_argument);
}

TEST(EventQueue, EagerPurgeBoundsCancellationHeavyWorkloads)
{
    // Timeout-style workload: every event is scheduled far in the
    // future and cancelled almost immediately, so lazy front-of-heap
    // dropping alone would never reclaim anything.  The eager purge
    // must keep the heap within a constant factor of the live
    // population.
    EventQueue queue;
    std::vector<EventHandle> live;
    for (int i = 0; i < 100000; ++i) {
        EventHandle handle = queue.schedule(
            std::make_shared<CallbackEvent>([] {}),
            static_cast<SimTime>(1000000 + i));
        if (i % 100 == 0)
            live.push_back(handle);  // 1% survive
        else
            handle.cancel();
    }
    EXPECT_GT(queue.purgeCount(), 0u);
    EXPECT_EQ(queue.liveSize(), live.size());
    // Without purging the heap would hold all 100000 entries; the
    // doubling purge schedule bounds it near 2x the live population
    // plus the post-purge check interval.
    EXPECT_LT(queue.size(), 10000u);
}

TEST(EventQueue, PurgePreservesOrderAndLiveEvents)
{
    EventQueue queue;
    std::vector<int> fired;
    // Interleave live and immediately-cancelled events at
    // random-ish times; enough of them to cross several purge
    // thresholds while the heap is a mix of both kinds.
    for (int i = 0; i < 5000; ++i) {
        const SimTime when = static_cast<SimTime>((i * 37) % 9973);
        if (i % 10 == 0) {
            const int id = i;
            queue.schedule(std::make_shared<CallbackEvent>(
                               [&fired, id]() { fired.push_back(id); }),
                           when);
        } else {
            EventHandle handle = queue.schedule(
                std::make_shared<CallbackEvent>([] {}), when);
            handle.cancel();
        }
    }
    SimTime last = 0;
    std::size_t popped = 0;
    while (!queue.empty()) {
        std::shared_ptr<Event> event = queue.pop();
        EXPECT_GE(event->when(), last);
        last = event->when();
        event->execute();
        ++popped;
    }
    EXPECT_EQ(popped, 500u);
    EXPECT_EQ(fired.size(), 500u);
}

// -------------------------------------------------------------- Simulator

TEST(Simulator, ClockAdvancesWithEvents)
{
    Simulator sim;
    std::vector<SimTime> times;
    sim.scheduleAt(10, [&] { times.push_back(sim.now()); });
    sim.scheduleAt(30, [&] { times.push_back(sim.now()); });
    EXPECT_EQ(sim.run(), StopReason::Drained);
    EXPECT_EQ(times, (std::vector<SimTime>{10, 30}));
    EXPECT_EQ(sim.now(), 30);
    EXPECT_EQ(sim.executedEvents(), 2u);
}

TEST(Simulator, EventsScheduleCausallyDependentEvents)
{
    Simulator sim;
    int fired = 0;
    sim.scheduleAt(5, [&] {
        ++fired;
        sim.scheduleAfter(10, [&] { ++fired; });
    });
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 15);
}

TEST(Simulator, RunUntilStopsAtLimit)
{
    Simulator sim;
    int fired = 0;
    sim.scheduleAt(10, [&] { ++fired; });
    sim.scheduleAt(100, [&] { ++fired; });
    EXPECT_EQ(sim.run(50), StopReason::TimeLimit);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 50);
    // Resume to drain the remaining event.
    EXPECT_EQ(sim.run(), StopReason::Drained);
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventExactlyAtLimitFires)
{
    Simulator sim;
    bool fired = false;
    sim.scheduleAt(50, [&] { fired = true; });
    sim.run(50);
    EXPECT_TRUE(fired);
}

TEST(Simulator, EventLimitStops)
{
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        sim.scheduleAt(i, [&] { ++fired; });
    EXPECT_EQ(sim.run(kSimTimeMax, 3), StopReason::EventLimit);
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, StopFromEvent)
{
    Simulator sim;
    int fired = 0;
    sim.scheduleAt(1, [&] {
        ++fired;
        sim.stop();
    });
    sim.scheduleAt(2, [&] { ++fired; });
    EXPECT_EQ(sim.run(), StopReason::Stopped);
    EXPECT_EQ(fired, 1);
}

TEST(Simulator, SchedulingInPastThrows)
{
    Simulator sim;
    sim.scheduleAt(10, [] {});
    sim.run();
    EXPECT_THROW(sim.scheduleAt(5, [] {}), std::logic_error);
    EXPECT_THROW(sim.scheduleAfter(-1, [] {}), std::logic_error);
}

TEST(Simulator, MakeStreamIsDeterministic)
{
    Simulator a(99), b(99);
    auto sa = a.makeStream("svc");
    auto sb = b.makeStream("svc");
    EXPECT_EQ(sa.nextU64(), sb.nextU64());
    auto other = a.makeStream("other");
    EXPECT_NE(sa.nextU64(), other.nextU64());
}

TEST(Simulator, CancelViaHandle)
{
    Simulator sim;
    bool fired = false;
    EventHandle handle = sim.scheduleAt(10, [&] { fired = true; });
    handle.cancel();
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, TraceLoggingHooks)
{
    Simulator sim;
    std::vector<std::string> lines;
    sim.logger().setLevel(LogLevel::Trace);
    sim.logger().setSink(nullptr);
    sim.logger().setHook(
        [&](const std::string& line) { lines.push_back(line); });
    sim.scheduleAt(10, [] {}, "my-event");
    sim.run();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("my-event"), std::string::npos);
}

TEST(Logger, LevelFiltering)
{
    Logger logger;
    EXPECT_FALSE(logger.enabled(LogLevel::Error));  // Off by default
    logger.setLevel(LogLevel::Warn);
    EXPECT_TRUE(logger.enabled(LogLevel::Error));
    EXPECT_TRUE(logger.enabled(LogLevel::Warn));
    EXPECT_FALSE(logger.enabled(LogLevel::Info));
    EXPECT_FALSE(logger.enabled(LogLevel::Trace));
}

}  // namespace
}  // namespace uqsim
