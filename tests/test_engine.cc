/**
 * @file
 * Unit tests for the DES engine: time, events, queue ordering,
 * cancellation, the slab event pool with generation-stamped handles,
 * and the simulator run loop.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "uqsim/core/engine/event_queue.h"
#include "uqsim/core/engine/inline_function.h"
#include "uqsim/core/engine/simulator.h"
#include "uqsim/random/rng.h"

namespace uqsim {
namespace {

// -------------------------------------------------------------- SimTime

TEST(SimTime, Conversions)
{
    EXPECT_EQ(secondsToSimTime(1.0), kSecond);
    EXPECT_EQ(secondsToSimTime(0.001), kMillisecond);
    EXPECT_EQ(secondsToSimTime(2.5e-6), 2500 * kNanosecond);
    EXPECT_DOUBLE_EQ(simTimeToSeconds(kSecond), 1.0);
    EXPECT_DOUBLE_EQ(simTimeToMillis(kSecond), 1000.0);
    EXPECT_DOUBLE_EQ(simTimeToMicros(kMillisecond), 1000.0);
}

TEST(SimTime, RoundsToNearestTick)
{
    EXPECT_EQ(secondsToSimTime(1.4e-9), 1);
    EXPECT_EQ(secondsToSimTime(1.6e-9), 2);
    EXPECT_EQ(secondsToSimTime(0.0), 0);
}

TEST(SimTime, Formatting)
{
    EXPECT_EQ(formatSimTime(500), "500ns");
    EXPECT_NE(formatSimTime(12 * kMicrosecond).find("us"),
              std::string::npos);
    EXPECT_NE(formatSimTime(3 * kMillisecond).find("ms"),
              std::string::npos);
    EXPECT_NE(formatSimTime(2 * kSecond).find("s"), std::string::npos);
}

// -------------------------------------------------------- InlineFunction

TEST(InlineFunction, HoldsMoveOnlyCallables)
{
    auto value = std::make_unique<int>(41);
    InlineFunction<int(), 64> fn =
        [v = std::move(value)]() { return *v + 1; };
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_TRUE(fn.storedInline());
    EXPECT_EQ(fn(), 42);

    InlineFunction<int(), 64> moved = std::move(fn);
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_EQ(moved(), 42);
}

TEST(InlineFunction, OversizedCapturesFallBackToHeap)
{
    struct Big {
        char bytes[200] = {};
    };
    Big big;
    big.bytes[0] = 7;
    InlineFunction<int(), 64> fn =
        [big]() { return static_cast<int>(big.bytes[0]); };
    EXPECT_FALSE(fn.storedInline());
    EXPECT_EQ(fn(), 7);
}

// ------------------------------------------------------------ EventQueue

TEST(EventQueue, PopsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&order]() { order.push_back(3); });
    queue.schedule(10, [&order]() { order.push_back(1); });
    queue.schedule(20, [&order]() { order.push_back(2); });
    while (!queue.empty()) {
        EventQueue::FiredEvent event = queue.pop();
        event.invoke();
    }
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesAreFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 50; ++i)
        queue.schedule(100, [&order, i]() { order.push_back(i); });
    while (!queue.empty()) {
        EventQueue::FiredEvent event = queue.pop();
        event.invoke();
    }
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest)
{
    EventQueue queue;
    EXPECT_EQ(queue.nextTime(), kSimTimeMax);
    queue.schedule(42, [] {});
    EXPECT_EQ(queue.nextTime(), 42);
}

TEST(EventQueue, PopOnEmptyIsFalsey)
{
    EventQueue queue;
    EXPECT_FALSE(queue.pop());
}

TEST(EventQueue, CancellationDropsEvent)
{
    EventQueue queue;
    bool fired = false;
    EventHandle handle =
        queue.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(handle.pending());
    EXPECT_TRUE(handle.cancel());
    EXPECT_FALSE(handle.pending());
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(queue.pop());
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelledBehindLiveEvent)
{
    EventQueue queue;
    bool live_fired = false;
    queue.schedule(5, [&] { live_fired = true; });
    EventHandle handle = queue.schedule(10, [] {});
    handle.cancel();
    EXPECT_FALSE(queue.empty());
    queue.pop().invoke();
    EXPECT_TRUE(live_fired);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, HandleAfterExecutionIsNotPending)
{
    EventQueue queue;
    EventHandle handle = queue.schedule(1, [] {});
    queue.pop().invoke();
    EXPECT_FALSE(handle.pending());
    EXPECT_FALSE(handle.cancel());
}

TEST(EventQueue, DefaultHandleIsInert)
{
    EventHandle handle;
    EXPECT_FALSE(handle.pending());
    EXPECT_FALSE(handle.cancel());
}

TEST(EventQueue, StaleHandleAfterSlotReuseIsNoOp)
{
    // Cancel frees the slot; the next schedule reuses it with a
    // bumped generation.  The stale handle must neither cancel nor
    // report the new occupant as pending.
    EventQueue queue;
    EventHandle first = queue.schedule(10, [] {});
    ASSERT_TRUE(first.cancel());
    bool second_fired = false;
    EventHandle second =
        queue.schedule(20, [&] { second_fired = true; });
    EXPECT_FALSE(first.pending());
    EXPECT_FALSE(first.cancel());
    EXPECT_TRUE(second.pending());
    queue.pop().invoke();
    EXPECT_TRUE(second_fired);
}

TEST(EventQueue, CancelThenPopKeepsOrdering)
{
    // Cancelling interior heap entries (O(log n) removal) must not
    // disturb the (when, sequence) pop order of the survivors.
    EventQueue queue;
    std::vector<int> order;
    std::vector<EventHandle> handles;
    for (int i = 0; i < 20; ++i) {
        handles.push_back(queue.schedule(
            static_cast<SimTime>(100 - i * 5),
            [&order, i]() { order.push_back(i); }));
    }
    for (int i = 0; i < 20; i += 2)
        EXPECT_TRUE(handles[static_cast<std::size_t>(i)].cancel());
    EXPECT_EQ(queue.size(), 10u);
    while (!queue.empty())
        queue.pop().invoke();
    // Odd ids survive; later ids have earlier times.
    const std::vector<int> expected = {19, 17, 15, 13, 11,
                                       9,  7,  5,  3,  1};
    EXPECT_EQ(order, expected);
}

TEST(EventQueue, SelfCancelDuringExecutionIsSafe)
{
    // An event cancelling its own handle while firing matches the
    // old cancelled-flag semantics: reports success, no effect, and
    // the slot is still recycled cleanly afterwards.
    EventQueue queue;
    EventHandle handle;
    int fired = 0;
    handle = queue.schedule(5, [&]() {
        ++fired;
        EXPECT_TRUE(handle.cancel());
    });
    queue.pop().invoke();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(handle.pending());
    // The queue keeps working after the self-cancel.
    queue.schedule(6, [&]() { ++fired; });
    queue.pop().invoke();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, EagerCancelReclaimsSlots)
{
    // Timeout-style workload: every event is scheduled far in the
    // future and cancelled almost immediately.  Cancellation removes
    // the heap entry eagerly and recycles the slot, so both the heap
    // and the slab pool stay near the live population instead of
    // growing with the cancellation churn.
    EventQueue queue;
    std::vector<EventHandle> live;
    for (int i = 0; i < 100000; ++i) {
        EventHandle handle = queue.schedule(
            static_cast<SimTime>(1000000 + i), [] {});
        if (i % 100 == 0)
            live.push_back(handle);  // 1% survive
        else
            EXPECT_TRUE(handle.cancel());
    }
    EXPECT_EQ(queue.size(), live.size());
    EXPECT_EQ(queue.liveSize(), live.size());
    // 1000 live slots; the pool holds them plus at most a slab of
    // slack, nowhere near the 100000 the purge-based queue flirted
    // with before its scans kicked in.
    EXPECT_LT(queue.poolCapacity(), 2048u);
    for (EventHandle& handle : live)
        EXPECT_TRUE(handle.pending());
}

TEST(EventQueue, RandomScheduleCancelMatchesSortedReference)
{
    // 10k random schedule/cancel operations checked against a plain
    // sorted reference: the 4-ary index-tracked heap must pop the
    // exact (when, sequence) order the spec demands.
    struct Ref {
        SimTime when;
        std::uint64_t sequence;
        int id;
    };
    random::Rng rng(20260806);
    EventQueue queue;
    std::vector<Ref> reference;
    std::vector<int> fired;
    std::vector<std::pair<int, EventHandle>> cancellable;
    std::uint64_t sequence = 0;
    int next_id = 0;
    for (int op = 0; op < 10000; ++op) {
        const bool do_cancel =
            !cancellable.empty() && rng.nextBounded(100) < 40;
        if (do_cancel) {
            const std::size_t pick = static_cast<std::size_t>(
                rng.nextBounded(
                    static_cast<std::uint64_t>(cancellable.size())));
            const int id = cancellable[pick].first;
            EXPECT_TRUE(cancellable[pick].second.cancel());
            cancellable.erase(cancellable.begin() +
                              static_cast<std::ptrdiff_t>(pick));
            reference.erase(
                std::find_if(reference.begin(), reference.end(),
                             [id](const Ref& r) {
                                 return r.id == id;
                             }));
        } else {
            const SimTime when =
                static_cast<SimTime>(rng.nextBounded(5000));
            const int id = next_id++;
            EventHandle handle = queue.schedule(
                when, [&fired, id]() { fired.push_back(id); });
            reference.push_back(Ref{when, sequence, id});
            // Keep roughly half of the live events cancellable.
            if (rng.nextBounded(2) == 0)
                cancellable.emplace_back(id, handle);
        }
        ++sequence;
    }
    std::sort(reference.begin(), reference.end(),
              [](const Ref& a, const Ref& b) {
                  if (a.when != b.when)
                      return a.when < b.when;
                  return a.sequence < b.sequence;
              });
    ASSERT_EQ(queue.size(), reference.size());
    while (!queue.empty()) {
        EventQueue::FiredEvent event = queue.pop();
        event.invoke();
    }
    ASSERT_EQ(fired.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
        EXPECT_EQ(fired[i], reference[i].id) << "at pop " << i;
}

TEST(EventQueue, MoveOnlyActionsAreSupported)
{
    EventQueue queue;
    auto payload = std::make_unique<int>(9);
    int seen = 0;
    queue.schedule(1, [p = std::move(payload), &seen]() { seen = *p; });
    queue.pop().invoke();
    EXPECT_EQ(seen, 9);
}

// -------------------------------------------------------------- Simulator

TEST(Simulator, ClockAdvancesWithEvents)
{
    Simulator sim;
    std::vector<SimTime> times;
    sim.scheduleAt(10, [&] { times.push_back(sim.now()); });
    sim.scheduleAt(30, [&] { times.push_back(sim.now()); });
    EXPECT_EQ(sim.run(), StopReason::Drained);
    EXPECT_EQ(times, (std::vector<SimTime>{10, 30}));
    EXPECT_EQ(sim.now(), 30);
    EXPECT_EQ(sim.executedEvents(), 2u);
}

TEST(Simulator, EventsScheduleCausallyDependentEvents)
{
    Simulator sim;
    int fired = 0;
    sim.scheduleAt(5, [&] {
        ++fired;
        sim.scheduleAfter(10, [&] { ++fired; });
    });
    sim.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(sim.now(), 15);
}

TEST(Simulator, RunUntilStopsAtLimit)
{
    Simulator sim;
    int fired = 0;
    sim.scheduleAt(10, [&] { ++fired; });
    sim.scheduleAt(100, [&] { ++fired; });
    EXPECT_EQ(sim.run(50), StopReason::TimeLimit);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(sim.now(), 50);
    // Resume to drain the remaining event.
    EXPECT_EQ(sim.run(), StopReason::Drained);
    EXPECT_EQ(fired, 2);
}

TEST(Simulator, EventExactlyAtLimitFires)
{
    Simulator sim;
    bool fired = false;
    sim.scheduleAt(50, [&] { fired = true; });
    sim.run(50);
    EXPECT_TRUE(fired);
}

TEST(Simulator, EventLimitStops)
{
    Simulator sim;
    int fired = 0;
    for (int i = 0; i < 10; ++i)
        sim.scheduleAt(i, [&] { ++fired; });
    EXPECT_EQ(sim.run(kSimTimeMax, 3), StopReason::EventLimit);
    EXPECT_EQ(fired, 3);
}

TEST(Simulator, StopFromEvent)
{
    Simulator sim;
    int fired = 0;
    sim.scheduleAt(1, [&] {
        ++fired;
        sim.stop();
    });
    sim.scheduleAt(2, [&] { ++fired; });
    EXPECT_EQ(sim.run(), StopReason::Stopped);
    EXPECT_EQ(fired, 1);
}

TEST(Simulator, SchedulingInPastThrows)
{
    Simulator sim;
    sim.scheduleAt(10, [] {});
    sim.run();
    EXPECT_THROW(sim.scheduleAt(5, [] {}), std::logic_error);
    EXPECT_THROW(sim.scheduleAfter(-1, [] {}), std::logic_error);
}

TEST(Simulator, MakeStreamIsDeterministic)
{
    Simulator a(99), b(99);
    auto sa = a.makeStream("svc");
    auto sb = b.makeStream("svc");
    EXPECT_EQ(sa.nextU64(), sb.nextU64());
    auto other = a.makeStream("other");
    EXPECT_NE(sa.nextU64(), other.nextU64());
}

TEST(Simulator, CancelViaHandle)
{
    Simulator sim;
    bool fired = false;
    EventHandle handle = sim.scheduleAt(10, [&] { fired = true; });
    handle.cancel();
    sim.run();
    EXPECT_FALSE(fired);
}

TEST(Simulator, TraceLoggingHooks)
{
    Simulator sim;
    std::vector<std::string> lines;
    sim.logger().setLevel(LogLevel::Trace);
    sim.logger().setSink(nullptr);
    sim.logger().setHook(
        [&](const std::string& line) { lines.push_back(line); });
    sim.scheduleAt(10, [] {}, "my-event");
    sim.run();
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_NE(lines[0].find("my-event"), std::string::npos);
}

TEST(Logger, LevelFiltering)
{
    Logger logger;
    EXPECT_FALSE(logger.enabled(LogLevel::Error));  // Off by default
    logger.setLevel(LogLevel::Warn);
    EXPECT_TRUE(logger.enabled(LogLevel::Error));
    EXPECT_TRUE(logger.enabled(LogLevel::Warn));
    EXPECT_FALSE(logger.enabled(LogLevel::Info));
    EXPECT_FALSE(logger.enabled(LogLevel::Trace));
}

TEST(EngineAudit, QueueAuditIsCleanThroughScheduleCancelPop)
{
    EventQueue queue;
    EXPECT_TRUE(queue.auditCheck().empty());
    std::vector<EventHandle> handles;
    for (int i = 0; i < 100; ++i)
        handles.push_back(queue.schedule(100 - i, [] {}, "e"));
    EXPECT_TRUE(queue.auditCheck().empty());
    for (int i = 0; i < 100; i += 3)
        handles[static_cast<std::size_t>(i)].cancel();
    EXPECT_TRUE(queue.auditCheck().empty());
    while (!queue.empty()) {
        EventQueue::FiredEvent event = queue.pop();
        event.invoke();
    }
    const std::vector<std::string> findings = queue.auditCheck();
    EXPECT_TRUE(findings.empty());
    EXPECT_EQ(queue.freeSlots(), queue.poolCapacity());
}

TEST(EngineAudit, LeakedFiredEventIsDetected)
{
    // auditCheck is documented "between events": holding a FiredEvent
    // across the check is exactly the leak it exists to catch.
    EventQueue queue;
    queue.schedule(1, [] {}, "leak");
    {
        EventQueue::FiredEvent held = queue.pop();
        const std::vector<std::string> findings = queue.auditCheck();
        ASSERT_FALSE(findings.empty());
        bool mentions_leak = false;
        for (const std::string& finding : findings)
            mentions_leak |=
                finding.find("FiredEvent") != std::string::npos;
        EXPECT_TRUE(mentions_leak);
        held.invoke();
    }
    // The RAII release restores clean accounting.
    EXPECT_TRUE(queue.auditCheck().empty());
}

TEST(EngineAudit, SimulatorAuditAndControlPolling)
{
    Simulator sim;
    RunControl control;
    sim.setRunControl(&control);
    int fired = 0;
    for (int i = 0; i < 3000; ++i)
        sim.scheduleAt(i, [&fired] { ++fired; }, "tick");
    sim.run();
    EXPECT_EQ(fired, 3000);
    EXPECT_TRUE(sim.auditEngine().clean());
    // The control saw progress watermarks published along the way.
    EXPECT_GT(control.eventWatermark(), 0u);
}

TEST(EngineAudit, EventBudgetAbortsBetweenEvents)
{
    Simulator sim;
    RunControl control;
    control.setMaxEvents(Simulator::kControlPollEvents);
    sim.setRunControl(&control);
    int fired = 0;
    for (int i = 0; i < 5000; ++i)
        sim.scheduleAt(i, [&fired] { ++fired; }, "tick");
    EXPECT_THROW(sim.run(), SimulationAbortError);
    // The abort happened between events at poll granularity, so the
    // engine's pooled storage is still consistent.
    EXPECT_TRUE(sim.auditEngine().clean());
    EXPECT_EQ(static_cast<std::uint64_t>(fired),
              Simulator::kControlPollEvents);
    EXPECT_EQ(control.abortRequested(), AbortReason::EventBudget);
}

TEST(EngineAudit, ExternalAbortIsHonored)
{
    Simulator sim;
    RunControl control;
    sim.setRunControl(&control);
    for (int i = 0; i < 5000; ++i)
        sim.scheduleAt(i, [] {}, "tick");
    control.requestAbort(AbortReason::External);
    try {
        sim.run();
        FAIL() << "expected SimulationAbortError";
    } catch (const SimulationAbortError& error) {
        EXPECT_EQ(error.reason(), AbortReason::External);
        EXPECT_NE(std::string(error.what()).find("external"),
                  std::string::npos);
    }
}

}  // namespace
}  // namespace uqsim
