/**
 * @file
 * Tests for the prebuilt model library: every service builder emits
 * a parseable service.json, every application bundle assembles and
 * runs, and bundles round-trip through the on-disk layout.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "uqsim/core/service/service_model.h"
#include "uqsim/core/sim/simulation.h"
#include "uqsim/json/json_writer.h"
#include "uqsim/models/applications.h"
#include "uqsim/models/memcached.h"
#include "uqsim/models/mongodb.h"
#include "uqsim/models/nginx.h"
#include "uqsim/models/stage_presets.h"
#include "uqsim/models/thrift.h"
#include "uqsim/random/distribution_factory.h"

namespace uqsim {
namespace models {
namespace {

// -------------------------------------------------------- service JSON

TEST(StagePresets, EpollStageMatchesPaperShape)
{
    const json::JsonValue stage = epollStage(0);
    EXPECT_EQ(stage.at("stage_name").asString(), "epoll");
    EXPECT_EQ(stage.at("queue_type").asString(), "epoll");
    EXPECT_TRUE(stage.at("batching").asBool());
    const StageConfig config = StageConfig::fromJson(stage);
    EXPECT_EQ(config.batchLimit, kEpollBatch);
    EXPECT_GT(config.time.perJob(), 0.0);  // linear in batch size
}

TEST(StagePresets, SocketReadHasPerByteCost)
{
    const StageConfig config =
        StageConfig::fromJson(socketReadStage(1));
    EXPECT_EQ(config.queueType, QueueType::Socket);
    EXPECT_GT(config.time.perByte(), 0.0);
}

TEST(StagePresets, NoiseWrapperRaisesMean)
{
    const json::JsonValue base = expUs(10.0);
    const json::JsonValue noisy = withNoise(base, 0.01, 6.0);
    auto base_dist = random::makeDistribution(base);
    auto noisy_dist = random::makeDistribution(noisy);
    EXPECT_GT(noisy_dist->mean(), base_dist->mean());
    EXPECT_NEAR(noisy_dist->mean(),
                base_dist->mean() * (0.99 + 0.01 * 6.0), 1e-9);
}

TEST(MemcachedModel, ParsesAndHasPaperPaths)
{
    auto model = ServiceModel::fromJson(memcachedServiceJson({}));
    EXPECT_EQ(model->name(), "memcached");
    EXPECT_EQ(model->defaultThreads(), 4);
    const int read = model->pathIdByName("memcached_read");
    const int write = model->pathIdByName("memcached_write");
    EXPECT_NE(read, write);
    // Read and write traverse the same number of stages (Listing 1)
    // but use distinct processing stages so each path carries its
    // own distribution.
    EXPECT_EQ(model->path(read).stageIds.size(),
              model->path(write).stageIds.size());
    EXPECT_NE(model->path(read).stageIds[2],
              model->path(write).stageIds[2]);
}

TEST(NginxModels, AllRolesParse)
{
    for (const json::JsonValue& doc :
         {nginxWebserverJson({}), nginxProxyJson({}),
          nginxCacheFrontendJson({})}) {
        auto model = ServiceModel::fromJson(doc);
        EXPECT_GE(model->stages().size(), 4u);
        // Every NGINX role starts with epoll.
        EXPECT_EQ(model->stage(0).queueType, QueueType::Epoll);
    }
    auto frontend = ServiceModel::fromJson(nginxCacheFrontendJson({}));
    EXPECT_NO_THROW(frontend->pathIdByName("request"));
    EXPECT_NO_THROW(frontend->pathIdByName("response"));
    EXPECT_NO_THROW(frontend->pathIdByName("miss_forward"));
}

TEST(MongoModel, DiskPathUsesDiskResource)
{
    auto model = ServiceModel::fromJson(mongoServiceJson({}));
    EXPECT_TRUE(model->usesDisk());
    const PathConfig& disk = model->path(
        model->pathIdByName("query_disk"));
    bool has_disk_stage = false;
    for (int stage_id : disk.stageIds) {
        if (model->stage(stage_id).resource == StageResource::Disk)
            has_disk_stage = true;
    }
    EXPECT_TRUE(has_disk_stage);
    const PathConfig& memory = model->path(
        model->pathIdByName("query_memory"));
    for (int stage_id : memory.stageIds)
        EXPECT_NE(model->stage(stage_id).resource,
                  StageResource::Disk);
}

TEST(MongoModel, HitProbabilityFlowsIntoPaths)
{
    MongoOptions options;
    options.memoryHitProbability = 0.8;
    auto model = ServiceModel::fromJson(mongoServiceJson(options));
    random::Rng rng(2);
    int memory = 0;
    for (int i = 0; i < 20000; ++i) {
        if (model->pathSelector().select(rng) ==
            model->pathIdByName("query_memory"))
            ++memory;
    }
    EXPECT_NEAR(memory / 20000.0, 0.8, 0.02);
}

TEST(ThriftModel, DefaultEchoHandler)
{
    auto model = ServiceModel::fromJson(thriftServiceJson({}));
    EXPECT_NO_THROW(model->pathIdByName("echo"));
    EXPECT_EQ(model->stages().size(), 4u);
}

TEST(ThriftModel, MultipleHandlers)
{
    ThriftOptions options;
    options.handlers = {ThriftHandler{"lookup", 20.0, 0.6},
                        ThriftHandler{"store", 40.0, 0.4}};
    auto model = ServiceModel::fromJson(thriftServiceJson(options));
    EXPECT_EQ(model->paths().size(), 2u);
    EXPECT_EQ(model->stages().size(), 5u);  // epoll, read, 2x proc, send
    EXPECT_NO_THROW(model->pathIdByName("lookup"));
    EXPECT_NO_THROW(model->pathIdByName("store"));
}

// ------------------------------------------------------------- bundles

TEST(Bundles, EveryBundleFinalizes)
{
    RunParams run;
    run.qps = 100.0;
    run.durationSeconds = 0.2;
    run.warmupSeconds = 0.05;

    EXPECT_NO_THROW(Simulation::fromBundle(
        twoTierBundle(TwoTierParams{run, 8, 4})));
    EXPECT_NO_THROW(Simulation::fromBundle(
        threeTierBundle(ThreeTierParams{run, 8, 2, 0.1})));
    EXPECT_NO_THROW(Simulation::fromBundle(
        loadBalancerBundle(LoadBalancerParams{run, 4, 8})));
    EXPECT_NO_THROW(Simulation::fromBundle(
        fanoutBundle(FanoutParams{run, 4, 8, 612})));
    EXPECT_NO_THROW(Simulation::fromBundle(
        thriftEchoBundle(ThriftEchoParams{run, 1})));
    EXPECT_NO_THROW(Simulation::fromBundle(socialNetworkBundle(
        SocialNetworkParams{run, 4, 2, 0.25, 0.2})));
    EXPECT_NO_THROW(Simulation::fromBundle(tailAtScaleBundle(
        TailAtScaleParams{run, 10, 0.1, 1e-3, 10.0})));
    PowerTwoTierParams power;
    power.run = run;
    EXPECT_NO_THROW(
        Simulation::fromBundle(powerTwoTierBundle(power)));
}

TEST(Bundles, RealProxyNoiseRaisesTail)
{
    TwoTierParams params;
    params.run.qps = 20000.0;
    params.run.warmupSeconds = 0.3;
    params.run.durationSeconds = 1.5;
    auto clean = Simulation::fromBundle(twoTierBundle(params));
    const RunReport clean_report = clean->run();
    params.run.realProxyNoise = true;
    auto noisy = Simulation::fromBundle(twoTierBundle(params));
    const RunReport noisy_report = noisy->run();
    EXPECT_GT(noisy_report.endToEnd.p99Ms, clean_report.endToEnd.p99Ms);
}

TEST(Bundles, TailAtScaleSlowLeafCounts)
{
    TailAtScaleParams params;
    params.clusterSize = 20;
    params.slowFraction = 0.25;
    const ConfigBundle bundle = tailAtScaleBundle(params);
    // 5 slow leaves + 15 fast leaves deployed.
    int fast = 0, slow = 0;
    for (const json::JsonValue& svc :
         bundle.graph.at("services").asArray()) {
        const std::string name = svc.at("service").asString();
        if (name == "leaf")
            fast = static_cast<int>(svc.at("instances").size());
        if (name == "slow_leaf")
            slow = static_cast<int>(svc.at("instances").size());
    }
    EXPECT_EQ(fast, 15);
    EXPECT_EQ(slow, 5);
}

TEST(Bundles, WriteAndReloadRoundTrip)
{
    namespace fs = std::filesystem;
    const fs::path dir =
        fs::temp_directory_path() / "uqsim_bundle_test";
    fs::remove_all(dir);

    TwoTierParams params;
    params.run.qps = 2000.0;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 0.8;
    params.run.seed = 5;
    const ConfigBundle original = twoTierBundle(params);
    writeBundle(original, dir.string());

    ASSERT_TRUE(fs::exists(dir / "machines.json"));
    ASSERT_TRUE(fs::exists(dir / "graph.json"));
    ASSERT_TRUE(fs::exists(dir / "path.json"));
    ASSERT_TRUE(fs::exists(dir / "client.json"));
    ASSERT_TRUE(fs::exists(dir / "options.json"));
    ASSERT_TRUE(fs::exists(dir / "services" / "nginx.json"));
    ASSERT_TRUE(fs::exists(dir / "services" / "memcached.json"));

    const ConfigBundle reloaded =
        ConfigBundle::fromDirectory(dir.string());
    EXPECT_TRUE(reloaded.machines == original.machines);
    EXPECT_TRUE(reloaded.graph == original.graph);
    EXPECT_TRUE(reloaded.paths == original.paths);
    EXPECT_TRUE(reloaded.client == original.client);
    EXPECT_EQ(reloaded.options.seed, original.options.seed);

    // The reloaded bundle runs identically (determinism through the
    // file round-trip).
    auto a = Simulation::fromBundle(original);
    auto b = Simulation::fromBundle(reloaded);
    const RunReport ra = a->run();
    const RunReport rb = b->run();
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_DOUBLE_EQ(ra.endToEnd.p99Ms, rb.endToEnd.p99Ms);
    fs::remove_all(dir);
}

TEST(Bundles, FromDirectoryMissingThrows)
{
    EXPECT_THROW(ConfigBundle::fromDirectory("/nonexistent/dir"),
                 json::JsonError);
}

TEST(Bundles, ParameterValidation)
{
    LoadBalancerParams lb;
    lb.webServers = 0;
    EXPECT_THROW(loadBalancerBundle(lb), std::invalid_argument);
    FanoutParams fan;
    fan.fanout = 0;
    EXPECT_THROW(fanoutBundle(fan), std::invalid_argument);
    TailAtScaleParams tail;
    tail.clusterSize = 0;
    EXPECT_THROW(tailAtScaleBundle(tail), std::invalid_argument);
}

}  // namespace
}  // namespace models
}  // namespace uqsim
