/**
 * @file
 * Schedule-space explorer tests: engine tie choice points, the
 * option-0 default-equivalence contract, seeded invariant-violation
 * discovery with schedule-file replay, schedule-file round-trips,
 * cooperative aborts mid-explore, and enumeration/budget accounting.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "uqsim/core/engine/audit.h"
#include "uqsim/core/engine/simulator.h"
#include "uqsim/core/sim/simulation.h"
#include "uqsim/explore/choosers.h"
#include "uqsim/explore/explorer.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/stage_presets.h"
#include "uqsim/runner/run_journal.h"

namespace uqsim {
namespace {

using explore::Decision;
using explore::ExploreLimits;
using explore::ExploreOptions;
using explore::Explorer;
using explore::ExploreResult;
using explore::RecordingChooser;
using explore::Schedule;
using explore::ScheduleOutcome;

// ------------------------------------------ engine tie choice points

/** Runs three same-timestamp events under a tie prefix; returns the
 *  execution order as a string plus the trace digest. */
void
runTieTriple(std::vector<int> prefix, std::string* order,
             std::uint64_t* digest)
{
    ExploreLimits limits;
    limits.maxTieChoices = 4;
    RecordingChooser chooser(limits, std::move(prefix));
    Simulator sim(1);
    sim.setChooser(&chooser);
    order->clear();
    sim.scheduleAt(100, [order]() { order->push_back('a'); }, "a");
    sim.scheduleAt(100, [order]() { order->push_back('b'); }, "b");
    sim.scheduleAt(100, [order]() { order->push_back('c'); }, "c");
    EXPECT_EQ(sim.run(), StopReason::Drained);
    *digest = sim.traceDigest();
    EXPECT_TRUE(sim.auditEngine().violations.empty());
}

TEST(TieChoicePoints, PrefixesEnumerateTieOrders)
{
    std::string order;
    std::uint64_t d_default, d_bac, d_cab, d_cba;
    runTieTriple({}, &order, &d_default);
    EXPECT_EQ(order, "abc");  // option 0 = scheduling order
    runTieTriple({1}, &order, &d_bac);
    EXPECT_EQ(order, "bac");
    runTieTriple({2}, &order, &d_cab);
    EXPECT_EQ(order, "cab");
    runTieTriple({2, 1}, &order, &d_cba);
    EXPECT_EQ(order, "cba");

    // Reordered schedules must be distinguishable by digest.
    EXPECT_NE(d_default, d_bac);
    EXPECT_NE(d_default, d_cba);
    EXPECT_NE(d_bac, d_cab);
}

TEST(TieChoicePoints, NoChooserMatchesAllDefaultChooser)
{
    std::string order;
    std::uint64_t with_chooser;
    runTieTriple({}, &order, &with_chooser);

    Simulator sim(1);
    std::string plain_order;
    sim.scheduleAt(100, [&]() { plain_order.push_back('a'); }, "a");
    sim.scheduleAt(100, [&]() { plain_order.push_back('b'); }, "b");
    sim.scheduleAt(100, [&]() { plain_order.push_back('c'); }, "c");
    EXPECT_EQ(sim.run(), StopReason::Drained);
    EXPECT_EQ(plain_order, order);
    EXPECT_EQ(sim.traceDigest(), with_chooser);
}

TEST(TieChoicePoints, RecordsDecisionsAndFingerprints)
{
    ExploreLimits limits;
    limits.maxTieChoices = 4;
    RecordingChooser chooser(limits, {});
    Simulator sim(1);
    sim.setChooser(&chooser);
    int fired = 0;
    sim.scheduleAt(50, [&]() { ++fired; }, "x");
    sim.scheduleAt(50, [&]() { ++fired; }, "y");
    sim.scheduleAt(50, [&]() { ++fired; }, "z");
    sim.scheduleAt(90, [&]() { ++fired; }, "late");
    EXPECT_EQ(sim.run(), StopReason::Drained);
    EXPECT_EQ(fired, 4);

    // Ties of 3 then 2 events are decisions; the final singletons
    // are not choice points at all.
    ASSERT_EQ(chooser.decisions().size(), 2u);
    EXPECT_EQ(chooser.decisions()[0].options, 3);
    EXPECT_EQ(chooser.decisions()[1].options, 2);
    EXPECT_EQ(chooser.decisions()[0].kind, ChoiceKind::EventTie);
    EXPECT_EQ(chooser.fingerprints().size(), 2u);
    EXPECT_EQ(chooser.truncatedDecisions(), 0u);
}

// ------------------------------------------ seeded 2-tier scenario

/**
 * Front->leaf with a timeout+retry policy and a scripted leaf crash
 * window (0.40 s, 0.50 s).  Under fault-window jitter the window
 * shifts past the nominal recovery point, so goodput fails to
 * recover within the grace period — the seeded violation the
 * explorer must find.
 */
ConfigBundle
retryStormBundle(std::uint64_t seed)
{
    ConfigBundle bundle;
    bundle.options.seed = seed;
    bundle.options.warmupSeconds = 0.1;
    bundle.options.durationSeconds = 1.0;
    bundle.machines = json::parse(
        R"({"wire_latency_us": 5.0, "loopback_latency_us": 1.0,)"
        R"( "machines": [)"
        R"( {"name": "front", "cores": 4, "irq_cores": 0},)"
        R"( {"name": "leaf0", "cores": 2, "irq_cores": 0}]})");
    for (const auto& [name, dist] :
         {std::pair<std::string, json::JsonValue>{
              "front", models::detUs(5.0)},
          std::pair<std::string, json::JsonValue>{
              "leaf", models::expUs(100.0)}}) {
        json::JsonValue doc = json::JsonValue::makeObject();
        doc.asObject()["service_name"] = name;
        doc.asObject()["execution_model"] = "simple";
        json::JsonArray stages;
        stages.push_back(models::processingStage(0, "proc", dist));
        doc.asObject()["stages"] = json::JsonValue(std::move(stages));
        json::JsonArray paths;
        paths.push_back(models::pathJson(0, "serve", {0}));
        doc.asObject()["paths"] = json::JsonValue(std::move(paths));
        bundle.services.push_back(std::move(doc));
    }
    bundle.graph = json::parse(
        R"({"services": [)"
        R"( {"service": "front", "connection_pools": {"leaf": 64},)"
        R"(  "policies": {"leaf": {"timeout_s": 0.002, "retries": 2,)"
        R"(   "backoff_base_s": 0.0002}},)"
        R"(  "instances": [{"machine": "front", "threads": 4}]},)"
        R"( {"service": "leaf",)"
        R"(  "instances": [{"machine": "leaf0", "threads": 2}]}]})");
    bundle.paths = json::parse(
        R"({"paths": [{"probability": 1.0, "nodes":)"
        R"( [{"node_id": 0, "service": "front", "path": "serve",)"
        R"(   "children": [1]},)"
        R"(  {"node_id": 1, "service": "leaf", "path": "serve",)"
        R"(   "children": [2]},)"
        R"(  {"node_id": 2, "service": "front", "path": "serve",)"
        R"(   "children": []}]}]})");
    bundle.client = json::parse(
        R"({"front_service": "front", "connections": 64,)"
        R"( "arrival": "poisson", "load": {"type": "constant",)"
        R"( "qps": 500.0}, "request_bytes": {"type": "deterministic",)"
        R"( "value": 128.0}})");
    bundle.faults = json::parse(
        R"({"faults": [{"type": "crash", "instance": "leaf.0",)"
        R"( "at_s": 0.4, "recover_s": 0.5}]})");
    return bundle;
}

/** Jitter-only exploration: one decision, two onsets. */
ExploreOptions
jitterOptions()
{
    ExploreOptions options;
    options.limits.faultJitterChoices = 2;
    options.limits.faultJitterStepSeconds = 0.1;
    options.maxSchedules = 8;
    return options;
}

TEST(Explorer, DefaultScheduleMatchesPlainRunDigest)
{
    auto plain = Simulation::fromBundle(retryStormBundle(11));
    plain->run();
    const std::uint64_t base = plain->sim().traceDigest();

    // All three choice kinds armed: the all-defaults schedule must
    // still reproduce the chooser-free run bit-identically (the
    // option-0 contract).
    ExploreOptions options = jitterOptions();
    options.limits.maxTieChoices = 4;
    options.limits.timerNudgeChoices = 2;
    options.limits.timerNudgeStepSeconds = 0.0005;
    options.limits.maxDecisions = 256;
    Explorer explorer(explore::bundleFactory(retryStormBundle(11)),
                      options);
    const ScheduleOutcome outcome = explorer.runPrefix({});
    EXPECT_EQ(outcome.status, runner::FailureKind::None);
    EXPECT_EQ(outcome.digest, base);
}

TEST(Explorer, FindsSeededRetryStormViolationAndReplaysIt)
{
    const std::string schedule_path =
        ::testing::TempDir() + "uqsim_violation_schedule.json";
    const std::string journal_path =
        ::testing::TempDir() + "uqsim_explore_journal.jsonl";
    ExploreOptions options = jitterOptions();
    options.scheduleOutPath = schedule_path;
    options.journalPath = journal_path;
    Explorer explorer(explore::bundleFactory(retryStormBundle(11)),
                      options);
    // In the default schedule the leaf recovers at 0.50 s and
    // completions resume immediately; shifting the window +0.1 s
    // leaves the leaf dead through the whole grace period.
    explorer.addInvariant(explore::goodputRecovers(0.5, 0.05, 5));
    explorer.addInvariant(explore::breakerRecloses());
    explorer.addInvariant(explore::noJobLeaked());

    const ExploreResult result = explorer.explore();
    // One FaultJitter decision with two options: the default plus
    // one alternative, found within the budget.
    EXPECT_EQ(result.schedulesRun, 2u);
    EXPECT_EQ(result.violations, 1u);
    ASSERT_FALSE(result.outcomes.empty());
    EXPECT_FALSE(result.outcomes.front().violated());

    const ScheduleOutcome* violation = result.firstViolation();
    ASSERT_NE(violation, nullptr);
    EXPECT_NE(violation->digest, result.defaultDigest);
    EXPECT_NE(violation->violation.find("goodput-recovers"),
              std::string::npos);
    ASSERT_EQ(violation->decisions.size(), 1u);
    EXPECT_EQ(violation->decisions[0].kind, ChoiceKind::FaultJitter);
    EXPECT_EQ(violation->decisions[0].chosen, 1);

    // The emitted schedule file replays to the identical failing
    // digest and re-triggers the same invariant.
    const Schedule loaded = Schedule::load(schedule_path);
    EXPECT_EQ(loaded.expectedDigest, violation->digest);
    EXPECT_EQ(loaded.violation, violation->violation);
    const ScheduleOutcome replayed = explorer.replay(loaded);
    EXPECT_TRUE(replayed.error.empty()) << replayed.error;
    EXPECT_EQ(replayed.digest, loaded.expectedDigest);
    EXPECT_EQ(replayed.violation, violation->violation);

    // The journal reuses the harness taxonomy: the clean default
    // schedule is ok, the violating one is an invariant failure.
    const runner::JournalIndex journal =
        runner::JournalIndex::load(journal_path);
    const runner::JournalEntry* first =
        journal.find("explore", 0, 0);
    const runner::JournalEntry* second =
        journal.find("explore", 1, 0);
    ASSERT_NE(first, nullptr);
    ASSERT_NE(second, nullptr);
    EXPECT_EQ(first->status, runner::FailureKind::None);
    EXPECT_EQ(first->traceDigest, result.defaultDigest);
    EXPECT_EQ(second->status,
              runner::FailureKind::InvariantViolation);
    std::remove(schedule_path.c_str());
    std::remove(journal_path.c_str());
}

TEST(Explorer, EnumeratesJitterOptionsWithinBudget)
{
    ExploreOptions options;
    options.limits.faultJitterChoices = 3;
    options.limits.faultJitterStepSeconds = 0.05;
    options.maxSchedules = 10;
    Explorer explorer(explore::bundleFactory(retryStormBundle(5)),
                      options);
    const ExploreResult wide = explorer.explore();
    // One decision, three options -> exactly three schedules.
    EXPECT_EQ(wide.schedulesRun, 3u);
    EXPECT_EQ(wide.frontierLeft, 0u);
    EXPECT_FALSE(wide.aborted);

    // A budget of 2 leaves the third alternative unexplored.
    options.maxSchedules = 2;
    Explorer capped(explore::bundleFactory(retryStormBundle(5)),
                    options);
    const ExploreResult narrow = capped.explore();
    EXPECT_EQ(narrow.schedulesRun, 2u);
    EXPECT_EQ(narrow.frontierLeft, 1u);
}

TEST(Explorer, EventBudgetAbortClassifiesAsTimeoutWithCleanAudit)
{
    ExploreOptions options = jitterOptions();
    options.maxEventsPerSchedule = 2000;
    Explorer explorer(explore::bundleFactory(retryStormBundle(7)),
                      options);
    const ExploreResult result = explorer.explore();
    // The default schedule times out; aborted schedules are not
    // expanded, so the search ends after one run — and the loop
    // itself was not externally aborted.
    ASSERT_EQ(result.schedulesRun, 1u);
    EXPECT_FALSE(result.aborted);
    EXPECT_EQ(result.outcomes[0].status,
              runner::FailureKind::Timeout);
    // The cooperative abort lands between events: the post-abort
    // engine audit must stay clean (no escalation to invariant).
    EXPECT_EQ(result.outcomes[0].error.find("post-abort audit"),
              std::string::npos);
}

TEST(Explorer, ExternalAbortStopsTheExplorationLoop)
{
    RunControl control;
    ExploreOptions options = jitterOptions();
    options.control = &control;
    control.requestAbort(AbortReason::External);
    Explorer explorer(explore::bundleFactory(retryStormBundle(7)),
                      options);
    const ExploreResult result = explorer.explore();
    ASSERT_EQ(result.schedulesRun, 1u);
    EXPECT_TRUE(result.aborted);
    EXPECT_EQ(result.outcomes[0].status,
              runner::FailureKind::Timeout);
}

// --------------------------------------------- schedule file format

TEST(ScheduleFile, RoundTripsThroughJson)
{
    Schedule schedule;
    schedule.limits.maxTieChoices = 3;
    schedule.limits.faultJitterChoices = 2;
    schedule.limits.faultJitterStepSeconds = 0.1;
    schedule.limits.timerNudgeChoices = 2;
    schedule.limits.timerNudgeStepSeconds = 0.0005;
    schedule.limits.maxDecisions = 32;
    schedule.choices.push_back(
        Decision{ChoiceKind::FaultJitter, 2, 1,
                 "fault-window/crash"});
    schedule.choices.push_back(
        Decision{ChoiceKind::EventTie, 3, 2, "event-tie"});
    schedule.expectedDigest = 0xDEADBEEFCAFEF00DULL;
    schedule.violation = "goodput-recovers: too slow";

    const Schedule back = Schedule::fromJson(schedule.toJson());
    EXPECT_EQ(back.limits.maxTieChoices, 3);
    EXPECT_EQ(back.limits.faultJitterChoices, 2);
    EXPECT_DOUBLE_EQ(back.limits.faultJitterStepSeconds, 0.1);
    EXPECT_EQ(back.limits.maxDecisions, 32u);
    ASSERT_EQ(back.choices.size(), 2u);
    EXPECT_EQ(back.choices[0].kind, ChoiceKind::FaultJitter);
    EXPECT_EQ(back.choices[0].chosen, 1);
    EXPECT_EQ(back.choices[1].options, 3);
    EXPECT_EQ(back.choices[1].label, "event-tie");
    EXPECT_EQ(back.expectedDigest, 0xDEADBEEFCAFEF00DULL);
    EXPECT_EQ(back.violation, "goodput-recovers: too slow");
}

TEST(ScheduleFile, SaveAndLoad)
{
    const std::string path =
        ::testing::TempDir() + "uqsim_schedule_roundtrip.json";
    Schedule schedule;
    schedule.expectedDigest = 42;
    schedule.choices.push_back(
        Decision{ChoiceKind::TimerNudge, 2, 1, "timer/retry"});
    schedule.save(path);
    const Schedule back = Schedule::load(path);
    EXPECT_EQ(back.expectedDigest, 42u);
    ASSERT_EQ(back.choices.size(), 1u);
    EXPECT_EQ(back.choices[0].kind, ChoiceKind::TimerNudge);
    std::remove(path.c_str());
}

TEST(ScheduleFile, RejectsBadInput)
{
    EXPECT_THROW(Schedule::fromJson(json::parse(
                     R"({"schema": "bogus", "limits": {},)"
                     R"( "choices": []})")),
                 json::JsonError);
    // chosen out of the declared option range
    EXPECT_THROW(
        Schedule::fromJson(json::parse(
            R"({"schema": "uqsim-schedule-v1", "limits": {},)"
            R"( "choices": [{"kind": "event_tie", "options": 2,)"
            R"( "chosen": 5}]})")),
        json::JsonError);
    // unknown choice kind
    EXPECT_THROW(
        Schedule::fromJson(json::parse(
            R"({"schema": "uqsim-schedule-v1", "limits": {},)"
            R"( "choices": [{"kind": "coin_flip", "options": 2,)"
            R"( "chosen": 0}]})")),
        std::invalid_argument);
}

TEST(ScheduleFile, DigestHexRoundTrip)
{
    EXPECT_EQ(explore::digestToHex(0), std::string(16, '0'));
    EXPECT_EQ(explore::digestToHex(0xCBF29CE484222325ULL),
              "cbf29ce484222325");
    EXPECT_EQ(explore::digestFromHex("cbf29ce484222325"),
              0xCBF29CE484222325ULL);
    EXPECT_EQ(explore::digestFromHex(
                  explore::digestToHex(0xFFFFFFFFFFFFFFFFULL)),
              0xFFFFFFFFFFFFFFFFULL);
    EXPECT_THROW(explore::digestFromHex("not-hex"),
                 std::invalid_argument);
    EXPECT_THROW(explore::digestFromHex(""), std::invalid_argument);
    EXPECT_THROW(explore::digestFromHex("0123456789abcdef0"),
                 std::invalid_argument);
}

TEST(ChoiceKinds, NamesRoundTrip)
{
    for (const ChoiceKind kind :
         {ChoiceKind::EventTie, ChoiceKind::FaultJitter,
          ChoiceKind::TimerNudge}) {
        EXPECT_EQ(choiceKindFromName(choiceKindName(kind)), kind);
    }
    EXPECT_THROW(choiceKindFromName("quantum"),
                 std::invalid_argument);
}

}  // namespace
}  // namespace uqsim
