/**
 * @file
 * Tests for the Simulation facade: build protocol enforcement,
 * warm-up accounting, report contents, and the per-frequency
 * histogram path driven end to end through DVFS.
 */

#include <gtest/gtest.h>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/applications.h"

namespace uqsim {
namespace {

TEST(SimulationFacade, BuildProtocolEnforced)
{
    Simulation simulation;
    // run() before finalize() is an error.
    EXPECT_THROW(simulation.run(), std::logic_error);
    EXPECT_THROW(simulation.dispatcher(), std::logic_error);
    // finalize without any path variants is an error.
    EXPECT_THROW(simulation.finalize(), std::logic_error);
}

TEST(SimulationFacade, FinalizeTwiceThrows)
{
    models::ThriftEchoParams params;
    params.run.qps = 100.0;
    params.run.durationSeconds = 0.2;
    params.run.warmupSeconds = 0.05;
    auto simulation =
        Simulation::fromBundle(models::thriftEchoBundle(params));
    EXPECT_THROW(simulation->finalize(), std::logic_error);
}

TEST(SimulationFacade, RunTwiceThrows)
{
    models::ThriftEchoParams params;
    params.run.qps = 100.0;
    params.run.durationSeconds = 0.2;
    params.run.warmupSeconds = 0.05;
    auto simulation =
        Simulation::fromBundle(models::thriftEchoBundle(params));
    simulation->run();
    EXPECT_THROW(simulation->run(), std::logic_error);
}

TEST(SimulationFacade, MachinesAfterDeploymentThrows)
{
    models::ThriftEchoParams params;
    params.run.qps = 100.0;
    const ConfigBundle bundle = models::thriftEchoBundle(params);
    Simulation simulation(bundle.options);
    simulation.loadMachinesJson(bundle.machines);
    for (const auto& service : bundle.services)
        simulation.loadServiceJson(service);
    simulation.loadGraphJson(bundle.graph);
    EXPECT_THROW(simulation.loadMachinesJson(bundle.machines),
                 std::logic_error);
}

TEST(SimulationFacade, AddClientAfterFinalizeThrows)
{
    models::ThriftEchoParams params;
    params.run.qps = 100.0;
    auto simulation =
        Simulation::fromBundle(models::thriftEchoBundle(params));
    workload::ClientConfig config;
    EXPECT_THROW(simulation->addClient(config), std::logic_error);
}

TEST(SimulationFacade, WarmupExcludedFromStatistics)
{
    // Constant load: the measured window is (duration - warmup), so
    // completions ~ qps * window, not qps * duration.
    models::ThriftEchoParams params;
    params.run.qps = 10000.0;
    params.run.warmupSeconds = 1.0;
    params.run.durationSeconds = 2.0;
    auto simulation =
        Simulation::fromBundle(models::thriftEchoBundle(params));
    const RunReport report = simulation->run();
    EXPECT_NEAR(static_cast<double>(report.completed), 10000.0,
                700.0);
    EXPECT_NEAR(report.achievedQps, 10000.0, 700.0);
    EXPECT_NEAR(report.offeredQps, 10000.0, 1e-9);
}

TEST(SimulationFacade, ReportCarriesEngineCounters)
{
    models::ThriftEchoParams params;
    params.run.qps = 1000.0;
    params.run.warmupSeconds = 0.1;
    params.run.durationSeconds = 0.6;
    auto simulation =
        Simulation::fromBundle(models::thriftEchoBundle(params));
    const RunReport report = simulation->run();
    EXPECT_GT(report.events, 1000u);
    EXPECT_GT(report.wallSeconds, 0.0);
    EXPECT_FALSE(report.tiers.empty());
}

TEST(SimulationFacade, MaxEventsGuardStopsRun)
{
    models::ThriftEchoParams params;
    params.run.qps = 10000.0;
    params.run.warmupSeconds = 0.1;
    params.run.durationSeconds = 10.0;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    bundle.options.maxEvents = 5000;
    auto simulation = Simulation::fromBundle(bundle);
    const RunReport report = simulation->run();
    EXPECT_LE(report.events, 5000u);
}

TEST(SimulationFacade, PerFrequencyHistogramsDriveLatency)
{
    // The paper's power-management methodology: per-frequency
    // processing-time distributions.  At nominal frequency the stage
    // costs 10 us; the 1.2 GHz table entry says 100 us.  Dropping
    // the machine frequency must swap distributions.
    const char* service_json = R"({
        "service_name": "svc",
        "threads": 1,
        "stages": [
            {"stage_name": "proc", "stage_id": 0,
             "queue_type": "single", "batching": false,
             "service_time": {
                 "base": {"type": "deterministic", "value": 1e-5},
                 "per_frequency": {
                     "1.2": {"type": "deterministic",
                             "value": 1e-4}}}}],
        "paths": [{"path_id": 0, "path_name": "serve",
                   "stages": [0]}]})";
    auto run_at = [&](double frequency_ghz) {
        SimulationOptions options;
        options.warmupSeconds = 0.05;
        options.durationSeconds = 0.4;
        Simulation simulation(options);
        simulation.loadMachinesJson(json::parse(R"({
            "machines": [{"name": "m0", "cores": 2,
                          "dvfs_ghz": [1.2, 2.6]}]})"));
        simulation.loadServiceJson(json::parse(service_json));
        simulation.loadGraphJson(json::parse(R"({
            "services": [{"service": "svc",
                          "instances": [{"machine": "m0",
                                         "threads": 1}]}]})"));
        simulation.loadPathJson(json::parse(R"({
            "nodes": [{"node_id": 0, "service": "svc",
                       "children": []}]})"));
        simulation.loadClientJson(json::parse(R"({
            "front_service": "svc", "connections": 8,
            "load": 1000})"));
        simulation.finalize();
        simulation.cluster().machine("m0").dvfs().setFrequency(
            frequency_ghz);
        return simulation.run();
    };
    const RunReport nominal = run_at(2.6);
    const RunReport slow = run_at(1.2);
    // 90 us processing difference end-to-end.
    EXPECT_NEAR(slow.endToEnd.meanMs - nominal.endToEnd.meanMs, 0.09,
                0.01);
}

}  // namespace
}  // namespace uqsim
