/**
 * @file
 * Determinism regression tests: the contract that a simulation's
 * result is a pure function of (configuration, seed), regardless of
 * process history or how many runner threads execute it
 * (docs/ARCHITECTURE.md, "Parallel execution & determinism").
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "uqsim/core/engine/audit.h"
#include "uqsim/models/applications.h"
#include "uqsim/runner/sweep_runner.h"

namespace uqsim {
namespace {

models::TwoTierParams
twoTierParams(double qps, std::uint64_t seed)
{
    models::TwoTierParams params;
    params.run.qps = qps;
    params.run.seed = seed;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 0.9;
    return params;
}

struct RunOutcome {
    RunReport report;
    std::uint64_t digest = 0;
    std::vector<double> latencies;
};

RunOutcome
runTwoTier(double qps, std::uint64_t seed)
{
    auto simulation =
        Simulation::fromBundle(models::twoTierBundle(twoTierParams(qps, seed)));
    RunOutcome outcome;
    outcome.report = simulation->run();
    outcome.digest = simulation->sim().traceDigest();
    outcome.latencies = simulation->latencies().values();
    return outcome;
}

void
expectIdenticalReports(const RunReport& a, const RunReport& b)
{
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.timeouts, b.timeouts);
    EXPECT_EQ(a.events, b.events);
    // Bitwise equality, not EXPECT_NEAR: the contract is that the
    // exact same floating-point operations run in the same order.
    EXPECT_EQ(a.achievedQps, b.achievedQps);
    EXPECT_EQ(a.endToEnd.count, b.endToEnd.count);
    EXPECT_EQ(a.endToEnd.meanMs, b.endToEnd.meanMs);
    EXPECT_EQ(a.endToEnd.p50Ms, b.endToEnd.p50Ms);
    EXPECT_EQ(a.endToEnd.p95Ms, b.endToEnd.p95Ms);
    EXPECT_EQ(a.endToEnd.p99Ms, b.endToEnd.p99Ms);
    EXPECT_EQ(a.endToEnd.maxMs, b.endToEnd.maxMs);
    ASSERT_EQ(a.tiers.size(), b.tiers.size());
    for (const auto& [tier, stats] : a.tiers) {
        ASSERT_TRUE(b.tiers.count(tier));
        const LatencyStats& other = b.tiers.at(tier);
        EXPECT_EQ(stats.count, other.count);
        EXPECT_EQ(stats.meanMs, other.meanMs);
        EXPECT_EQ(stats.p99Ms, other.p99Ms);
    }
}

// ------------------------------------------- golden-trace regression

TEST(Determinism, SameSeedIsBitIdentical)
{
    const RunOutcome first = runTwoTier(20000.0, 42);
    const RunOutcome second = runTwoTier(20000.0, 42);

    ASSERT_GT(first.report.completed, 100u);
    EXPECT_EQ(first.digest, second.digest);
    expectIdenticalReports(first.report, second.report);
    ASSERT_EQ(first.latencies.size(), second.latencies.size());
    for (std::size_t i = 0; i < first.latencies.size(); ++i)
        ASSERT_EQ(first.latencies[i], second.latencies[i]);
}

TEST(Determinism, DifferentSeedsDiverge)
{
    const RunOutcome a = runTwoTier(20000.0, 1);
    const RunOutcome b = runTwoTier(20000.0, 2);
    EXPECT_NE(a.digest, b.digest);
}

TEST(Determinism, TraceDigestCoversEventOrder)
{
    // Two empty simulators agree; executing any event moves the
    // digest away from the initial offset.
    Simulator idle(1);
    Simulator busy(1);
    busy.scheduleAt(secondsToSimTime(1e-3), []() {}, "tick");
    busy.run();
    EXPECT_NE(idle.traceDigest(), busy.traceDigest());
}

// ------------------------------------ runner thread-count invariance

std::vector<runner::ReplicatedCurve>
runGrid(int jobs)
{
    runner::RunnerOptions options;
    options.jobs = jobs;
    options.replications = 3;
    options.baseSeed = 7;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("two_tier", {12000.0, 24000.0},
                          [](double qps, std::uint64_t seed) {
                              return Simulation::fromBundle(
                                  models::twoTierBundle(
                                      twoTierParams(qps, seed)));
                          });
    return sweep_runner.run();
}

void
expectIdenticalGrids(const std::vector<runner::ReplicatedCurve>& serial,
                     const std::vector<runner::ReplicatedCurve>& other)
{
    ASSERT_EQ(serial.size(), other.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
        ASSERT_EQ(serial[c].points.size(), other[c].points.size());
        for (std::size_t p = 0; p < serial[c].points.size(); ++p) {
            const runner::ReplicatedPoint& lhs = serial[c].points[p];
            const runner::ReplicatedPoint& rhs = other[c].points[p];
            ASSERT_EQ(lhs.replications.size(), rhs.replications.size());
            for (std::size_t r = 0; r < lhs.replications.size(); ++r) {
                EXPECT_EQ(lhs.replications[r].seed,
                          rhs.replications[r].seed);
                EXPECT_EQ(lhs.replications[r].traceDigest,
                          rhs.replications[r].traceDigest);
                expectIdenticalReports(lhs.replications[r].report,
                                       rhs.replications[r].report);
            }
            // Aggregates merge in fixed replication order, so they
            // are bitwise identical too, not just close.
            EXPECT_EQ(lhs.meanMs.mean(), rhs.meanMs.mean());
            EXPECT_EQ(lhs.p99Ms.mean(), rhs.p99Ms.mean());
            EXPECT_EQ(lhs.meanCi.halfWidth, rhs.meanCi.halfWidth);
            EXPECT_EQ(lhs.pooled.count(), rhs.pooled.count());
            EXPECT_EQ(lhs.pooled.p99(), rhs.pooled.p99());
        }
    }
}

TEST(Determinism, RunnerResultsIndependentOfThreadCount)
{
    // One serial reference, compared against every parallel width the
    // sweep harness advertises as equivalent (--jobs 2 and 8 cover
    // both under- and over-subscription of the grid).
    const std::vector<runner::ReplicatedCurve> serial = runGrid(1);
    expectIdenticalGrids(serial, runGrid(2));
    expectIdenticalGrids(serial, runGrid(8));
}

TEST(Determinism, AuditModeDoesNotPerturbTheTrace)
{
    // The engine auditor observes the run (heap scans, invariant
    // walks) but must never change it: digests and reports with
    // UQSIM_AUDIT on are bit-identical to the default.
    const bool saved = audit::auditModeEnabled();
    audit::setAuditMode(false);
    const RunOutcome plain = runTwoTier(20000.0, 42);
    audit::setAuditMode(true);
    const RunOutcome audited = runTwoTier(20000.0, 42);
    audit::setAuditMode(saved);

    EXPECT_EQ(plain.digest, audited.digest);
    expectIdenticalReports(plain.report, audited.report);
    ASSERT_EQ(plain.latencies.size(), audited.latencies.size());
    for (std::size_t i = 0; i < plain.latencies.size(); ++i)
        ASSERT_EQ(plain.latencies[i], audited.latencies[i]);
}

TEST(Determinism, ReplicationSeedsAreDistinctAndStable)
{
    EXPECT_EQ(runner::replicationSeed(123, 0), 123u);
    const std::uint64_t r1 = runner::replicationSeed(123, 1);
    const std::uint64_t r2 = runner::replicationSeed(123, 2);
    EXPECT_NE(r1, 123u);
    EXPECT_NE(r1, r2);
    EXPECT_EQ(r1, runner::replicationSeed(123, 1));
}

}  // namespace
}  // namespace uqsim
