/**
 * @file
 * Topology-aware fault injection tests: link up/down/degraded state
 * on the FlowModel, deterministic failover over backup routes,
 * partitions and unreachable verdicts, switch_down on generated fat
 * trees, faults.json schema validation for the topology kinds,
 * FaultScheduler window-shift clamping, end-to-end report counters,
 * and digest determinism of link-fault runs across runner thread
 * counts (including composition with cluster-wide network windows).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/explore/choosers.h"
#include "uqsim/explore/schedule.h"
#include "uqsim/fault/fault_plan.h"
#include "uqsim/hw/cluster.h"
#include "uqsim/hw/flow_model.h"
#include "uqsim/hw/topology.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/applications.h"
#include "uqsim/models/stage_presets.h"
#include "uqsim/runner/sweep_runner.h"

namespace uqsim {
namespace {

using hw::Cluster;
using hw::DropReason;
using hw::FatTreeConfig;
using hw::FlowModel;
using hw::MachineConfig;
using hw::Topology;
using hw::TopologyBuilder;
using json::JsonArray;
using json::JsonValue;

/** No IRQ cores: transfer timing is purely the flow model's. */
MachineConfig
bareMachine(const std::string& name)
{
    MachineConfig config;
    config.name = name;
    config.cores = 2;
    config.irqCores = 0;
    return config;
}

// --------------------------------------- failover on the FlowModel

/** Two machines, one primary link and one higher-latency backup. */
struct BackupFixture {
    Simulator sim;
    FlowModel* model = nullptr;
    std::unique_ptr<Cluster> cluster;
    int primary = -1;
    int backup = -1;

    explicit BackupFixture(
        FlowModel::Config config = FlowModel::Config{})
        : sim(5)
    {
        auto owned = FlowModel::make(config);
        model = owned.get();
        primary = model->addLink({"p", 1e6, 10e-6});
        backup = model->addLink({"b", 1e6, 30e-6});
        model->setRoute(0, 1, {primary});
        model->addBackupRoute(0, 1, {backup});
        cluster = std::make_unique<Cluster>(sim, std::move(owned));
        cluster->addMachine(bareMachine("a"));
        cluster->addMachine(bareMachine("b"));
    }

    hw::Machine* a() { return cluster->machines()[0]; }
    hw::Machine* b() { return cluster->machines()[1]; }
};

TEST(TopologyFaults, LinkDownFailsOverWithAnalyticalLatencyDelta)
{
    BackupFixture fix;
    fix.model->setLinkDown(fix.primary);

    SimTime done_at = -1;
    fix.cluster->network().transfer(fix.a(), fix.b(), 500000,
                                    [&]() { done_at = fix.sim.now(); });
    fix.sim.run();
    // Same 1 MB/s capacity, but the backup path pays 30 us of
    // propagation instead of 10 us: the failover's latency delta is
    // exactly the candidates' latency difference.
    EXPECT_EQ(done_at,
              secondsToSimTime(0.5) + secondsToSimTime(30e-6));
    EXPECT_EQ(fix.model->failovers(), 1u);
    EXPECT_EQ(fix.model->unreachableMessages(), 0u);
}

TEST(TopologyFaults, NoSurvivingRouteYieldsUnreachableVerdict)
{
    BackupFixture fix;
    fix.model->setLinkDown(fix.primary);
    fix.model->setLinkDown(fix.backup);

    bool done = false;
    DropReason reason = DropReason::FaultLoss;
    int drops = 0;
    fix.cluster->network().transfer(fix.a(), fix.b(), 500000,
                                    [&]() { done = true; },
                                    [&](DropReason r) {
                                        reason = r;
                                        ++drops;
                                    });
    fix.sim.run();
    EXPECT_FALSE(done);
    EXPECT_EQ(drops, 1);
    EXPECT_EQ(reason, DropReason::Unreachable);
    EXPECT_EQ(fix.model->unreachableMessages(), 1u);
    EXPECT_FALSE(fix.model->reachable(0, 1));

    // Repair either candidate and the pair is reachable again.
    fix.model->setLinkUp(fix.backup);
    EXPECT_TRUE(fix.model->reachable(0, 1));
}

TEST(TopologyFaults, DropPolicyDropsInFlightFlowsAndCounts)
{
    BackupFixture fix;  // default policy: Drop

    bool done = false;
    DropReason reason = DropReason::FaultLoss;
    SimTime dropped_at = -1;
    fix.sim.scheduleAt(0,
                       [&]() {
                           fix.cluster->network().transfer(
                               fix.a(), fix.b(), 500000,
                               [&]() { done = true; },
                               [&](DropReason r) {
                                   reason = r;
                                   dropped_at = fix.sim.now();
                               });
                       },
                       "test/start");
    fix.sim.scheduleAt(secondsToSimTime(0.2),
                       [&]() { fix.model->setLinkDown(fix.primary); },
                       "test/down");
    fix.sim.scheduleAt(secondsToSimTime(0.3),
                       [&]() { fix.model->setLinkUp(fix.primary); },
                       "test/up");
    fix.sim.run();

    EXPECT_FALSE(done);
    EXPECT_EQ(reason, DropReason::LinkDown);
    EXPECT_EQ(dropped_at, secondsToSimTime(0.2));
    EXPECT_EQ(fix.model->linkDropsTotal(), 1u);
    EXPECT_NEAR(fix.model->linkDownSeconds(fix.primary), 0.1, 1e-9);
    const auto summaries = fix.model->linkFaultSummaries();
    ASSERT_EQ(summaries.size(), 1u);
    EXPECT_EQ(summaries[0].name, "p");
    EXPECT_EQ(summaries[0].drops, 1u);
    EXPECT_NEAR(summaries[0].downSeconds, 0.1, 1e-9);
    EXPECT_EQ(fix.model->activeFlowCount(), 0u);
}

TEST(TopologyFaults, StallPolicyFinishesLateByExactOutage)
{
    FlowModel::Config config;
    config.onLinkDown = FlowModel::InFlightPolicy::Stall;
    BackupFixture fix(config);

    SimTime done_at = -1;
    fix.sim.scheduleAt(0,
                       [&]() {
                           fix.cluster->network().transfer(
                               fix.a(), fix.b(), 500000,
                               [&]() { done_at = fix.sim.now(); },
                               [&](DropReason) {
                                   FAIL() << "stalled flow dropped";
                               });
                       },
                       "test/start");
    fix.sim.scheduleAt(secondsToSimTime(0.2),
                       [&]() { fix.model->setLinkDown(fix.primary); },
                       "test/down");
    fix.sim.scheduleAt(secondsToSimTime(0.35),
                       [&]() { fix.model->setLinkUp(fix.primary); },
                       "test/up");
    fix.sim.run();

    // 0.5 s of transmission plus exactly the 0.15 s outage.
    ASSERT_GE(done_at, 0);
    EXPECT_NEAR(simTimeToSeconds(done_at), 0.65 + 10e-6, 1e-7);
    EXPECT_EQ(fix.model->linkDropsTotal(), 0u);
    EXPECT_EQ(fix.model->flowsFinished(), 1u);
}

TEST(TopologyFaults, RepairRestoresExactPreFaultAllocation)
{
    Simulator sim(9);
    auto owned = FlowModel::make();
    FlowModel* model = owned.get();
    const int shared = model->addLink({"shared", 1e6, 0.0});
    const int up0 = model->addLink({"up0", 1e9, 0.0});
    const int up1 = model->addLink({"up1", 1e9, 0.0});
    model->setRoute(1, 0, {up0, shared});
    model->setRoute(2, 0, {up1, shared});
    Cluster cluster(sim, std::move(owned));
    cluster.addMachine(bareMachine("recv"));
    cluster.addMachine(bareMachine("s0"));
    cluster.addMachine(bareMachine("s1"));

    for (int i = 1; i <= 2; ++i) {
        sim.scheduleAt(0,
                       [&, i]() {
                           cluster.network().transfer(
                               cluster.machines()[i],
                               cluster.machines()[0], 2000000,
                               []() {});
                       },
                       "test/start");
    }
    std::vector<double> before, after;
    sim.scheduleAt(secondsToSimTime(0.4),
                   [&]() { before = model->activeFlowRates(); },
                   "test/sample");
    sim.scheduleAt(
        secondsToSimTime(0.5),
        [&]() { model->setLinkDegradation(shared, 0.5, 1.0); },
        "test/degrade");
    sim.scheduleAt(secondsToSimTime(0.6),
                   [&]() { model->clearLinkDegradation(shared); },
                   "test/repair");
    sim.scheduleAt(secondsToSimTime(0.7),
                   [&]() { after = model->activeFlowRates(); },
                   "test/sample");
    sim.run();

    ASSERT_EQ(before.size(), 2u);
    ASSERT_EQ(after.size(), 2u);
    // Bitwise-identical max-min allocation after the repair.
    EXPECT_EQ(before[0], after[0]);
    EXPECT_EQ(before[1], after[1]);
    EXPECT_EQ(before[0], 500000.0);
    (void)up1;
}

TEST(TopologyFaults, NestedDownStateComposesOverlappingWindows)
{
    BackupFixture fix;
    fix.model->setLinkDown(fix.primary);  // link_down window opens
    fix.model->setLinkDown(fix.primary);  // switch_down overlaps
    EXPECT_FALSE(fix.model->linkUp(fix.primary));
    fix.model->setLinkUp(fix.primary);
    EXPECT_FALSE(fix.model->linkUp(fix.primary))
        << "one repair must not cancel two overlapping faults";
    fix.model->setLinkUp(fix.primary);
    EXPECT_TRUE(fix.model->linkUp(fix.primary));
    EXPECT_THROW(fix.model->setLinkUp(fix.primary), std::logic_error);
}

// --------------------------------------------------- partitions

TEST(TopologyFaults, PartitionBlocksOnlyCrossGroupPairs)
{
    FatTreeConfig config;
    config.arity = 2;
    config.hostsPerEdge = 2;  // 4 hosts, 2 pods
    const Topology topo = TopologyBuilder::fatTree(config);
    ASSERT_EQ(topo.hostCount, 4);
    Simulator sim(3);
    auto owned = topo.makeModel();
    FlowModel* model = owned.get();
    Cluster cluster(sim, std::move(owned));
    topo.populateCluster(cluster, bareMachine("proto"));

    model->setPartition({{0, 1}, {2, 3}});
    EXPECT_TRUE(model->partitionActive());
    EXPECT_TRUE(model->reachable(0, 1));
    EXPECT_TRUE(model->reachable(2, 3));
    EXPECT_FALSE(model->reachable(0, 2));
    EXPECT_FALSE(model->reachable(3, 1));

    bool done = false;
    DropReason reason = DropReason::FaultLoss;
    cluster.network().transfer(cluster.machines()[0],
                               cluster.machines()[2], 1000,
                               [&]() { done = true; },
                               [&](DropReason r) { reason = r; });
    sim.run();
    EXPECT_FALSE(done);
    EXPECT_EQ(reason, DropReason::Unreachable);
    EXPECT_EQ(model->unreachableMessages(), 1u);

    // Hosts outside every group are unaffected.
    model->setPartition({{0}, {2}});
    EXPECT_TRUE(model->reachable(1, 3));
    EXPECT_TRUE(model->reachable(0, 1));
    EXPECT_FALSE(model->reachable(0, 2));

    model->clearPartition();
    EXPECT_FALSE(model->partitionActive());
    EXPECT_TRUE(model->reachable(0, 2));
}

// ------------------------------------ switch_down on the fat tree

TEST(TopologyFaults, AggAndCoreSwitchDownNeverDisconnectsAnyPair)
{
    FatTreeConfig config;
    config.arity = 4;
    config.oversubscription = 1.0;  // 16 hosts
    const Topology topo = TopologyBuilder::fatTree(config);
    Simulator sim(1);
    auto owned = topo.makeModel();
    FlowModel* model = owned.get();
    Cluster cluster(sim, std::move(owned));

    // Edge(8) + agg(8) + core(4) switches on a k=4 tree.
    EXPECT_EQ(model->switchNames().size(), 20u);
    int tested = 0;
    for (const std::string& name : model->switchNames()) {
        if (name.find(":agg") == std::string::npos &&
            name.rfind("core", 0) != 0)
            continue;  // edge switches are single-homed
        ++tested;
        const std::vector<int> links = model->switchLinks(name);
        for (int id : links)
            model->setLinkDown(id);
        for (int s = 0; s < topo.hostCount; ++s) {
            for (int d = 0; d < topo.hostCount; ++d) {
                if (s == d)
                    continue;
                EXPECT_TRUE(model->reachable(s, d))
                    << name << " down disconnects " << s << " -> "
                    << d;
            }
        }
        for (int id : links)
            model->setLinkUp(id);
    }
    EXPECT_EQ(tested, 12);
}

TEST(TopologyFaults, EdgeSwitchDownDisconnectsOnlyItsHosts)
{
    FatTreeConfig config;
    config.arity = 4;
    config.oversubscription = 1.0;
    const Topology topo = TopologyBuilder::fatTree(config);
    Simulator sim(1);
    auto owned = topo.makeModel();
    FlowModel* model = owned.get();
    Cluster cluster(sim, std::move(owned));

    // Hosts 0 and 1 live under pod0:edge0 and are single-homed.
    for (int id : model->switchLinks("pod0:edge0"))
        model->setLinkDown(id);
    EXPECT_FALSE(model->reachable(0, 5));
    EXPECT_FALSE(model->reachable(5, 1));
    EXPECT_TRUE(model->reachable(2, 3));
    EXPECT_TRUE(model->reachable(4, 15));
}

// ------------------------------------- generated backup candidates

TEST(TopologyFaults, FatTreeBackupsAreDeterministicAndWellFormed)
{
    FatTreeConfig config;
    config.arity = 4;
    config.oversubscription = 1.0;
    const Topology topo = TopologyBuilder::fatTree(config);
    const int half = config.arity / 2;

    // Same edge: no diversity.  Same pod: one alternate agg.  Cross
    // pod: every other (agg, core) pair.
    EXPECT_TRUE(topo.backupRoutes(0, 1).empty());
    EXPECT_EQ(topo.backupRoutes(0, 2).size(),
              static_cast<std::size_t>(half - 1));
    EXPECT_EQ(topo.backupRoutes(0, 4).size(),
              static_cast<std::size_t>(half * half - 1));

    for (int s = 0; s < topo.hostCount; ++s) {
        for (int d = 0; d < topo.hostCount; ++d) {
            if (s == d)
                continue;
            const auto& primary = topo.route(s, d);
            for (const auto& alt : topo.backupRoutes(s, d)) {
                ASSERT_EQ(alt.size(), primary.size())
                    << s << " -> " << d;
                EXPECT_EQ(topo.links[alt.front()].name,
                          topo.hostNames[s] + ":up");
                EXPECT_EQ(topo.links[alt.back()].name,
                          topo.hostNames[d] + ":down");
                EXPECT_NE(alt, primary);
            }
        }
    }

    // Regenerating yields the identical candidate lists, and
    // disabling generation yields none.
    const Topology again = TopologyBuilder::fatTree(config);
    EXPECT_EQ(topo.backups, again.backups);
    FatTreeConfig bare = config;
    bare.backupRoutes = false;
    const Topology none = TopologyBuilder::fatTree(bare);
    EXPECT_TRUE(none.backups.empty());
    EXPECT_TRUE(none.backupRoutes(0, 4).empty());
}

// ----------------------- RouteFailover choice point + replayability

TEST(TopologyFaults, RouteFailoverChoicePointRecordsAndReplays)
{
    auto run = [](Chooser* chooser) {
        Simulator sim(5);
        auto owned = FlowModel::make();
        FlowModel* model = owned.get();
        const int primary = model->addLink({"p", 1e6, 10e-6});
        const int b1 = model->addLink({"b1", 1e6, 30e-6});
        const int b2 = model->addLink({"b2", 1e6, 50e-6});
        model->setRoute(0, 1, {primary});
        model->addBackupRoute(0, 1, {b1});
        model->addBackupRoute(0, 1, {b2});
        Cluster cluster(sim, std::move(owned));
        cluster.addMachine(bareMachine("a"));
        cluster.addMachine(bareMachine("b"));
        if (chooser != nullptr)
            sim.setChooser(chooser);
        model->setLinkDown(primary);
        SimTime done_at = -1;
        cluster.network().transfer(cluster.machines()[0],
                                   cluster.machines()[1], 500000,
                                   [&]() { done_at = sim.now(); });
        sim.run();
        return std::make_pair(done_at, sim.traceDigest());
    };

    // Default (no chooser): first surviving candidate, b1.
    const auto base = run(nullptr);
    EXPECT_EQ(base.first,
              secondsToSimTime(0.5) + secondsToSimTime(30e-6));

    explore::ExploreLimits limits;
    limits.routeFailoverChoices = 2;
    explore::RecordingChooser recorder(limits, {1});
    const auto explored = run(&recorder);
    // Option 1 = second survivor, b2: a genuinely different schedule.
    EXPECT_EQ(explored.first,
              secondsToSimTime(0.5) + secondsToSimTime(50e-6));
    EXPECT_NE(explored.second, base.second);
    ASSERT_EQ(recorder.decisions().size(), 1u);
    EXPECT_EQ(recorder.decisions()[0].kind,
              ChoiceKind::RouteFailover);
    EXPECT_EQ(recorder.decisions()[0].chosen, 1);

    // A strict replay of the recorded schedule is bit-identical.
    explore::Schedule schedule;
    schedule.limits = limits;
    schedule.choices = recorder.decisions();
    explore::ReplayChooser replayer(schedule);
    const auto replayed = run(&replayer);
    EXPECT_EQ(replayed.first, explored.first);
    EXPECT_EQ(replayed.second, explored.second);
    EXPECT_EQ(replayer.divergences(), 0u);
}

// ------------------------------------- faults.json schema (v2 kinds)

TEST(FaultsJsonTopology, UnknownKindSuggestsClosest)
{
    try {
        fault::FaultSpec::fromJson(json::parse(
            R"({"type": "lnik_down", "link": "x",
                "start_s": 0.1, "end_s": 0.2})"));
        FAIL() << "expected JsonError";
    } catch (const json::JsonError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("lnik_down"), std::string::npos);
        EXPECT_NE(what.find("link_down"), std::string::npos)
            << "expected a did-you-mean suggestion, got: " << what;
    }
}

TEST(FaultsJsonTopology, UnknownKeysGetDidYouMean)
{
    const struct {
        const char* text;
        const char* bad;
        const char* suggestion;
    } cases[] = {
        {R"({"type": "link_down", "lnk": "x",
             "start_s": 0.1, "end_s": 0.2})",
         "lnk", "link"},
        {R"({"type": "switch_down", "swich": "pod0:agg0",
             "start_s": 0.1, "end_s": 0.2})",
         "swich", "switch"},
        {R"({"type": "partition", "grups": [["a"], ["b"]],
             "start_s": 0.1, "end_s": 0.2})",
         "grups", "groups"},
        {R"({"type": "link_degraded", "link": "x",
             "capacity_fact": 0.5,
             "start_s": 0.1, "end_s": 0.2})",
         "capacity_fact", "capacity_factor"},
    };
    for (const auto& c : cases) {
        try {
            fault::FaultSpec::fromJson(json::parse(c.text));
            FAIL() << "expected JsonError for " << c.bad;
        } catch (const json::JsonError& error) {
            const std::string what = error.what();
            EXPECT_NE(what.find(c.bad), std::string::npos) << what;
            EXPECT_NE(what.find(c.suggestion), std::string::npos)
                << "expected suggestion for " << c.bad << ", got: "
                << what;
        }
    }
}

TEST(FaultsJsonTopology, ValidatesWindowsAndRanges)
{
    auto reject = [](const std::string& text) {
        EXPECT_THROW(fault::FaultSpec::fromJson(json::parse(text)),
                     json::JsonError)
            << text;
    };
    // end_s must exceed start_s for every scripted window.
    reject(R"({"type": "link_down", "link": "x",
               "start_s": 0.2, "end_s": 0.2})");
    reject(R"({"type": "switch_down", "switch": "s",
               "start_s": 0.3, "end_s": 0.1})");
    // Stochastic link_down needs a positive repair time.
    reject(R"({"type": "link_down", "link": "x", "mtbf_s": 1.0})");
    // Degradation factors have hard ranges.
    reject(R"({"type": "link_degraded", "link": "x",
               "capacity_factor": 1.5,
               "start_s": 0.1, "end_s": 0.2})");
    reject(R"({"type": "link_degraded", "link": "x",
               "latency_factor": 0.5,
               "start_s": 0.1, "end_s": 0.2})");
    // Partitions need at least two non-empty groups.
    reject(R"({"type": "partition", "groups": [["a"]],
               "start_s": 0.1, "end_s": 0.2})");
    reject(R"({"type": "partition", "groups": [["a"], []],
               "start_s": 0.1, "end_s": 0.2})");
    // Required names.
    reject(R"({"type": "link_down", "start_s": 0.1, "end_s": 0.2})");
    reject(R"({"type": "switch_down",
               "start_s": 0.1, "end_s": 0.2})");

    // A valid spec of each kind parses.
    EXPECT_TRUE(fault::FaultSpec::fromJson(
                    json::parse(R"({"type": "link_down", "link": "x",
                                    "start_s": 0.1, "end_s": 0.2})"))
                    .topologyFault());
    EXPECT_TRUE(
        fault::FaultSpec::fromJson(
            json::parse(R"({"type": "partition",
                            "groups": [["a"], ["b", "c"]],
                            "start_s": 0.1, "end_s": 0.2})"))
            .topologyFault());
}

// --------------------------------------------- end-to-end bundles

SimulationOptions
runOptions(std::uint64_t seed, double warmup, double duration)
{
    SimulationOptions options;
    options.seed = seed;
    options.warmupSeconds = warmup;
    options.durationSeconds = duration;
    return options;
}

/** A one-stage "simple" service model. */
JsonValue
simpleService(const std::string& name, JsonValue dist_spec)
{
    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["service_name"] = name;
    doc.asObject()["execution_model"] = "simple";
    JsonArray stages;
    stages.push_back(models::processingStage(0, "proc",
                                             std::move(dist_spec)));
    doc.asObject()["stages"] = JsonValue(std::move(stages));
    JsonArray paths;
    paths.push_back(models::pathJson(0, "serve", {0}));
    doc.asObject()["paths"] = JsonValue(std::move(paths));
    return doc;
}

JsonValue
constantClient(const std::string& front, double qps, int connections)
{
    return json::parse(
        R"({"front_service": ")" + front + R"(", "connections": )" +
        std::to_string(connections) +
        R"(, "arrival": "poisson", "load": {"type": "constant",)"
        R"( "qps": )" + std::to_string(qps) +
        R"(}, "request_bytes": {"type": "deterministic",)"
        R"( "value": 128.0}})");
}

/** front + leaf0 machines on an explicit flow fabric; the repeated
 *  (from, to) routes[] entries install backup candidates. */
JsonValue
fabricMachinesDoc(bool backups)
{
    std::string text = R"({
        "schema_version": 2,
        "network": {"model": "flow", "loopback_latency_us": 1,
                    "external_latency_us": 5},
        "links": [
            {"name": "fl", "gbps": 10, "latency_us": 5},
            {"name": "lf", "gbps": 10, "latency_us": 5},
            {"name": "fl_b", "gbps": 10, "latency_us": 25},
            {"name": "lf_b", "gbps": 10, "latency_us": 25}
        ],
        "routes": [
            {"from": "front", "to": "leaf0", "links": ["fl"]},
            {"from": "leaf0", "to": "front", "links": ["lf"]})";
    if (backups) {
        text += R"(,
            {"from": "front", "to": "leaf0", "links": ["fl_b"]},
            {"from": "leaf0", "to": "front", "links": ["lf_b"]})";
    }
    text += R"(
        ],
        "machines": [{"name": "front", "cores": 4, "irq_cores": 0},
                     {"name": "leaf0", "cores": 2, "irq_cores": 0}]
    })";
    return json::parse(text);
}

/** Two-tier front -> leaf app over the explicit fabric. */
ConfigBundle
fabricBundle(std::uint64_t seed, double qps, bool backups,
             const std::string& faults)
{
    ConfigBundle bundle;
    bundle.options = runOptions(seed, 0.1, 0.8);
    bundle.machines = fabricMachinesDoc(backups);
    bundle.services.push_back(
        simpleService("front", models::detUs(5.0)));
    bundle.services.push_back(
        simpleService("leaf", models::expUs(100.0)));
    bundle.graph = json::parse(
        R"({"services": [{"service": "front", "connection_pools":)"
        R"( {"leaf": 32}, "instances":)"
        R"( [{"machine": "front", "threads": 4}]},)"
        R"( {"service": "leaf", "instances":)"
        R"( [{"machine": "leaf0", "threads": 2}]}]})");
    bundle.paths = json::parse(
        R"({"paths": [{"probability": 1.0, "nodes":)"
        R"( [{"node_id": 0, "service": "front", "path": "serve",)"
        R"( "children": [1]},)"
        R"( {"node_id": 1, "service": "leaf", "path": "serve",)"
        R"( "children": [2]},)"
        R"( {"node_id": 2, "service": "front", "path": "serve",)"
        R"( "children": []}]}]})");
    bundle.client = constantClient("front", qps, 32);
    if (!faults.empty())
        bundle.faults = json::parse(faults);
    return bundle;
}

/** Mirrors the explorer's assembly order: the chooser must be
 *  attached before finalize() so it sees the fault plan being
 *  scheduled. */
std::unique_ptr<Simulation>
buildSimWithChooser(const ConfigBundle& bundle, Chooser* chooser)
{
    auto simulation = std::make_unique<Simulation>(bundle.options);
    simulation->sim().setChooser(chooser);
    simulation->loadMachinesJson(bundle.machines);
    for (const JsonValue& service : bundle.services)
        simulation->loadServiceJson(service);
    simulation->loadGraphJson(bundle.graph);
    simulation->loadPathJson(bundle.paths);
    simulation->loadClientJson(bundle.client);
    if (!bundle.faults.isNull())
        simulation->loadFaultsJson(bundle.faults);
    simulation->finalize();
    return simulation;
}

const FlowModel&
flowModelOf(Simulation& simulation)
{
    const auto* model = dynamic_cast<const FlowModel*>(
        &simulation.cluster().network().model());
    EXPECT_NE(model, nullptr);
    return *model;
}

TEST(TopologyFaultsEndToEnd, ScriptedLinkDownReportsAndFailsOver)
{
    auto simulation = Simulation::fromBundle(fabricBundle(
        11, 2000.0, true,
        R"({"faults": [{"type": "link_down", "link": "fl",
                        "start_s": 0.3, "end_s": 0.5}]})"));
    const RunReport report = simulation->run();

    EXPECT_GT(report.completed, 100u);
    EXPECT_GT(report.failovers, 0u);
    ASSERT_EQ(report.linkFaults.count("fl"), 1u);
    EXPECT_NEAR(report.linkFaults.at("fl").downSeconds, 0.2, 1e-9);
    const std::string text = report.toString();
    EXPECT_NE(text.find("failovers"), std::string::npos);
    EXPECT_NE(text.find("link fl"), std::string::npos);
    const JsonValue doc = report.toJson();
    EXPECT_NE(doc.find("link_faults"), nullptr);
}

TEST(TopologyFaultsEndToEnd, PartitionCountsUnreachablePerTier)
{
    auto simulation = Simulation::fromBundle(fabricBundle(
        13, 2000.0, false,
        R"({"faults": [{"type": "partition",
                        "groups": [["front"], ["leaf0"]],
                        "start_s": 0.3, "end_s": 0.5}]})"));
    const RunReport report = simulation->run();

    EXPECT_GT(report.unreachable, 0u);
    EXPECT_GT(report.failed, 0u);
    // Service keeps completing outside the window.
    EXPECT_GT(report.completed, 100u);
    std::uint64_t tier_unreachable = 0;
    for (const auto& entry : report.tierFaults)
        tier_unreachable += entry.second.unreachable;
    EXPECT_EQ(tier_unreachable, report.unreachable);
}

TEST(TopologyFaultsEndToEnd, TopologyFaultOnConstantModelIsConfigError)
{
    ConfigBundle bundle = fabricBundle(
        7, 500.0, false,
        R"({"faults": [{"type": "link_down", "link": "fl",
                        "start_s": 0.3, "end_s": 0.5}]})");
    bundle.machines = json::parse(
        R"({"wire_latency_us": 5.0, "loopback_latency_us": 1.0,
            "machines": [{"name": "front", "cores": 4,
                          "irq_cores": 0},
                         {"name": "leaf0", "cores": 2,
                          "irq_cores": 0}]})");
    // The config error fires while the plan is scheduled (inside
    // finalize()), not deep into the run.
    EXPECT_THROW(Simulation::fromBundle(bundle), std::runtime_error);
}

TEST(TopologyFaultsEndToEnd, UnknownLinkNameGetsDidYouMean)
{
    try {
        Simulation::fromBundle(fabricBundle(
            7, 500.0, true,
            R"({"faults": [{"type": "link_down", "link": "fl_bb",
                            "start_s": 0.3, "end_s": 0.5}]})"));
        FAIL() << "expected a configuration error";
    } catch (const std::runtime_error& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("fl_bb"), std::string::npos);
        EXPECT_NE(what.find("fl_b"), std::string::npos)
            << "expected a did-you-mean suggestion, got: " << what;
    }
}

TEST(TopologyFaultsEndToEnd, StochasticLinkDownIsSeedDeterministic)
{
    auto run = [](std::uint64_t seed) {
        auto simulation = Simulation::fromBundle(fabricBundle(
            seed, 1500.0, true,
            R"({"faults": [{"type": "link_down", "link": "fl",
                            "mtbf_s": 0.2, "mttr_s": 0.05}]})"));
        const RunReport report = simulation->run();
        return std::make_pair(simulation->sim().traceDigest(),
                              report.completed);
    };
    const auto first = run(21);
    const auto second = run(21);
    EXPECT_EQ(first.first, second.first);
    EXPECT_EQ(first.second, second.second);
}

// ----------------------------- window-shift clamping regressions

TEST(TopologyFaultsEndToEnd, WindowShiftClampsToHorizonKeepingWidth)
{
    // Desired shift 3 * 0.2 s pushes the [0.35, 0.45] window past the
    // 0.6 s horizon; the clamp must land its *last* event exactly at
    // the horizon, preserving the window's 0.1 s width (a shifted
    // window may never close before it opens or lose its close
    // event).
    ConfigBundle bundle = fabricBundle(
        17, 1000.0, true,
        R"({"faults": [{"type": "link_down", "link": "fl",
                        "start_s": 0.35, "end_s": 0.45}]})");
    bundle.options.durationSeconds = 0.6;
    explore::ExploreLimits limits;
    limits.faultJitterChoices = 8;
    limits.faultJitterStepSeconds = 0.2;
    explore::RecordingChooser chooser(limits, {3});
    auto simulation = buildSimWithChooser(bundle, &chooser);
    simulation->run();

    const FlowModel& model = flowModelOf(*simulation);
    const int id = model.linkId("fl");
    ASSERT_GE(id, 0);
    EXPECT_NEAR(model.linkDownSeconds(id), 0.1, 1e-9)
        << "clamped window lost its width";
    EXPECT_TRUE(model.linkUp(id))
        << "the close event must fire within the horizon";
    ASSERT_GE(chooser.decisions().size(), 1u);
    EXPECT_EQ(chooser.decisions()[0].kind, ChoiceKind::FaultJitter);
}

TEST(TopologyFaultsEndToEnd, WindowAtOrPastHorizonIsNeverShifted)
{
    // The whole window sits past the horizon: no shift may be
    // applied (a negative clamp would pull it *into* the run).
    ConfigBundle bundle = fabricBundle(
        17, 1000.0, true,
        R"({"faults": [{"type": "link_down", "link": "fl",
                        "start_s": 0.7, "end_s": 0.8}]})");
    bundle.options.durationSeconds = 0.6;
    explore::ExploreLimits limits;
    limits.faultJitterChoices = 8;
    limits.faultJitterStepSeconds = 0.2;
    explore::RecordingChooser chooser(limits, {3});
    auto simulation = buildSimWithChooser(bundle, &chooser);
    const RunReport report = simulation->run();

    const FlowModel& model = flowModelOf(*simulation);
    const int id = model.linkId("fl");
    ASSERT_GE(id, 0);
    EXPECT_EQ(model.linkDownSeconds(id), 0.0);
    EXPECT_TRUE(model.linkUp(id));
    EXPECT_EQ(report.failovers, 0u);
}

// ------------------- digest determinism across runner thread counts

void
expectGridsIdentical(
    const std::vector<runner::ReplicatedCurve>& serial,
    const std::vector<runner::ReplicatedCurve>& other, int jobs)
{
    ASSERT_EQ(serial.size(), other.size());
    for (std::size_t c = 0; c < serial.size(); ++c) {
        ASSERT_EQ(serial[c].points.size(), other[c].points.size());
        for (std::size_t p = 0; p < serial[c].points.size(); ++p) {
            const auto& lhs = serial[c].points[p];
            const auto& rhs = other[c].points[p];
            ASSERT_EQ(lhs.replications.size(),
                      rhs.replications.size());
            for (std::size_t r = 0; r < lhs.replications.size();
                 ++r) {
                EXPECT_EQ(lhs.replications[r].traceDigest,
                          rhs.replications[r].traceDigest)
                    << "jobs=" << jobs << " point=" << p << " rep="
                    << r;
                EXPECT_EQ(lhs.replications[r].report.completed,
                          rhs.replications[r].report.completed);
            }
        }
    }
}

std::vector<runner::ReplicatedCurve>
runLinkFaultGrid(int jobs)
{
    runner::RunnerOptions options;
    options.jobs = jobs;
    options.replications = 2;
    options.baseSeed = 31;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep(
        "link_faults", {1500.0, 2500.0},
        [](double qps, std::uint64_t seed) {
            return Simulation::fromBundle(fabricBundle(
                seed, qps, true,
                R"({"faults": [
                    {"type": "link_down", "link": "fl",
                     "start_s": 0.3, "end_s": 0.45},
                    {"type": "link_degraded", "link": "lf",
                     "capacity_factor": 0.25, "latency_factor": 4,
                     "start_s": 0.5, "end_s": 0.65}]})"));
        });
    return sweep_runner.run();
}

TEST(TopologyFaultDeterminism, LinkFaultDigestsIndependentOfJobs)
{
    const auto serial = runLinkFaultGrid(1);
    for (int jobs : {2, 8})
        expectGridsIdentical(serial, runLinkFaultGrid(jobs), jobs);
}

/** Cluster-wide lossy/slow network window (the machine-granular
 *  fault kind) layered on a FlowModel fat tree, opening and closing
 *  mid-flow. */
std::vector<runner::ReplicatedCurve>
runNetworkWindowGrid(int jobs)
{
    runner::RunnerOptions options;
    options.jobs = jobs;
    options.replications = 2;
    options.baseSeed = 47;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep(
        "network_window_flow", {300.0, 600.0},
        [](double qps, std::uint64_t seed) {
            models::FanoutFatTreeParams params;
            params.run.qps = qps;
            params.run.seed = seed;
            params.run.warmupSeconds = 0.1;
            params.run.durationSeconds = 0.4;
            params.run.clientConnections = 64;
            params.fanout = 8;
            params.responseBytes = 16 * 1024;
            ConfigBundle bundle = models::fanoutFatTreeBundle(params);
            bundle.faults = json::parse(
                R"({"faults": [{"type": "network",
                                "start_s": 0.15, "end_s": 0.3,
                                "extra_latency_us": 200,
                                "loss_prob": 0.05}]})");
            return Simulation::fromBundle(bundle);
        });
    return sweep_runner.run();
}

TEST(TopologyFaultDeterminism, NetworkWindowOnFlowModelComposes)
{
    const auto serial = runNetworkWindowGrid(1);
    ASSERT_FALSE(serial.empty());
    // The lossy window must actually bite: some replication reports
    // network-loss faults.
    bool saw_faults = false;
    for (const auto& point : serial[0].points) {
        for (const auto& rep : point.replications) {
            if (rep.report.netDropped > 0)
                saw_faults = true;
        }
    }
    EXPECT_TRUE(saw_faults);
    for (int jobs : {2, 8})
        expectGridsIdentical(serial, runNetworkWindowGrid(jobs),
                             jobs);
}

}  // namespace
}  // namespace uqsim
