/**
 * @file
 * Network-model tests: max-min fair-share math against closed
 * forms, FlowModel timing against analytical incast shares, fat-tree
 * generator invariants, machines.json schema v2 validation, the
 * capacity-doubling metamorphic property, and FlowModel digest
 * determinism across runner thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/hw/cluster.h"
#include "uqsim/hw/flow_model.h"
#include "uqsim/hw/topology.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/applications.h"
#include "uqsim/runner/sweep_runner.h"

namespace uqsim {
namespace {

using hw::Cluster;
using hw::FatTreeConfig;
using hw::FlowModel;
using hw::MachineConfig;
using hw::Topology;
using hw::TopologyBuilder;

// ----------------------------------------------- max-min fair shares

TEST(MaxMinFairShares, SingleLinkSplitsEvenly)
{
    const auto rates = hw::maxMinFairShares({10.0}, {{0}, {0}});
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[0], 5.0);
    EXPECT_DOUBLE_EQ(rates[1], 5.0);
}

TEST(MaxMinFairShares, ClassicTwoLinkClosedForm)
{
    // Textbook case: link 0 (cap 10) carries {A, B}; link 1 (cap 20)
    // carries {B, C}.  Max-min: A = B = 5, C = 20 - 5 = 15.
    const auto rates =
        hw::maxMinFairShares({10.0, 20.0}, {{0}, {0, 1}, {1}});
    ASSERT_EQ(rates.size(), 3u);
    EXPECT_DOUBLE_EQ(rates[0], 5.0);
    EXPECT_DOUBLE_EQ(rates[1], 5.0);
    EXPECT_DOUBLE_EQ(rates[2], 15.0);
}

TEST(MaxMinFairShares, ChainProgressiveFilling)
{
    // f0 crosses every link; the cap-1 link pins it to 1, after
    // which f1 gets the rest of link 1 and f2 the rest of link 2.
    const auto rates =
        hw::maxMinFairShares({1.0, 2.0, 4.0}, {{0, 1, 2}, {1}, {2}});
    ASSERT_EQ(rates.size(), 3u);
    EXPECT_DOUBLE_EQ(rates[0], 1.0);
    EXPECT_DOUBLE_EQ(rates[1], 1.0);
    EXPECT_DOUBLE_EQ(rates[2], 3.0);
}

TEST(MaxMinFairShares, EmptyPathConsumesNothing)
{
    const auto rates = hw::maxMinFairShares({8.0}, {{}, {0}});
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[0], 0.0);
    EXPECT_DOUBLE_EQ(rates[1], 8.0);
}

// --------------------------------------------------- FlowModel timing

/** No IRQ cores: transfer timing is purely the flow model's. */
MachineConfig
bareMachine(const std::string& name)
{
    MachineConfig config;
    config.name = name;
    config.cores = 2;
    config.irqCores = 0;
    return config;
}

TEST(FlowModel, SingleFlowPaysTransmissionPlusLatency)
{
    Simulator sim(1);
    auto model = FlowModel::make();
    FlowModel* flow_model = model.get();
    const int link = flow_model->addLink({"ab", 1e6, 10e-6});
    flow_model->setRoute(0, 1, {link});
    Cluster cluster(sim, std::move(model));
    hw::Machine& a = cluster.addMachine(bareMachine("a"));
    hw::Machine& b = cluster.addMachine(bareMachine("b"));

    SimTime done_at = -1;
    cluster.network().transfer(&a, &b, 500000,
                               [&]() { done_at = sim.now(); });
    sim.run();
    // 500 kB over 1 MB/s = 0.5 s transmission + 10 us propagation.
    EXPECT_EQ(done_at, secondsToSimTime(0.5) + secondsToSimTime(10e-6));
    EXPECT_EQ(flow_model->flowsStarted(), 1u);
    EXPECT_EQ(flow_model->flowsFinished(), 1u);
    EXPECT_EQ(flow_model->activeFlowCount(), 0u);
}

TEST(FlowModel, ZeroBytesSkipBandwidthSharing)
{
    Simulator sim(1);
    auto model = FlowModel::make();
    FlowModel* flow_model = model.get();
    const int link = flow_model->addLink({"ab", 1e6, 10e-6});
    flow_model->setRoute(0, 1, {link});
    Cluster cluster(sim, std::move(model));
    hw::Machine& a = cluster.addMachine(bareMachine("a"));
    hw::Machine& b = cluster.addMachine(bareMachine("b"));

    SimTime done_at = -1;
    cluster.network().transfer(&a, &b, 0,
                               [&]() { done_at = sim.now(); });
    sim.run();
    EXPECT_EQ(done_at, secondsToSimTime(10e-6));
    EXPECT_EQ(flow_model->flowsStarted(), 0u);
}

TEST(FlowModel, MissingRouteThrows)
{
    Simulator sim(1);
    Cluster cluster(sim, FlowModel::make());
    hw::Machine& a = cluster.addMachine(bareMachine("a"));
    hw::Machine& b = cluster.addMachine(bareMachine("b"));
    EXPECT_THROW(cluster.network().transfer(&a, &b, 100, []() {}),
                 std::logic_error);
}

TEST(FlowModel, RejectsZeroCapacityAndDuplicateLinks)
{
    FlowModel model;
    EXPECT_THROW(model.addLink({"bad", 0.0, 0.0}),
                 std::invalid_argument);
    model.addLink({"ok", 1.0, 0.0});
    EXPECT_THROW(model.addLink({"ok", 1.0, 0.0}),
                 std::invalid_argument);
    EXPECT_EQ(model.linkId("ok"), 0);
    EXPECT_EQ(model.linkId("absent"), -1);
}

/** N equal senders into one oversubscribed down-link: per-flow
 *  throughput must match the analytical max-min share cap/N. */
TEST(FlowModel, IncastThroughputMatchesAnalyticalShare)
{
    constexpr int kSenders = 8;
    constexpr double kDownCap = 1.25e8;    // 1 Gb/s receiver NIC
    constexpr double kUpCap = 1.25e9;      // 10 Gb/s sender NICs
    constexpr double kLatency = 1e-6;      // per link
    constexpr std::uint32_t kBytes = 1000000;

    Simulator sim(7);
    auto model = FlowModel::make();
    FlowModel* flow_model = model.get();
    const int down = flow_model->addLink({"down", kDownCap, kLatency});
    for (int i = 0; i < kSenders; ++i) {
        const int up = flow_model->addLink(
            {"up" + std::to_string(i), kUpCap, kLatency});
        flow_model->setRoute(1 + i, 0, {up, down});
    }
    Cluster cluster(sim, std::move(model));
    hw::Machine& receiver = cluster.addMachine(bareMachine("recv"));
    std::vector<hw::Machine*> senders;
    for (int i = 0; i < kSenders; ++i) {
        senders.push_back(&cluster.addMachine(
            bareMachine("send" + std::to_string(i))));
    }

    std::vector<SimTime> done_at(kSenders, -1);
    for (int i = 0; i < kSenders; ++i) {
        sim.scheduleAt(0,
                       [&, i]() {
                           cluster.network().transfer(
                               senders[i], &receiver, kBytes,
                               [&, i]() { done_at[i] = sim.now(); });
                       },
                       "incast/start");
    }
    sim.run();

    const double share = kDownCap / kSenders;
    for (int i = 0; i < kSenders; ++i) {
        ASSERT_GE(done_at[i], 0) << "flow " << i << " never finished";
        const double elapsed =
            simTimeToSeconds(done_at[i]) - 2 * kLatency;
        const double throughput = kBytes / elapsed;
        EXPECT_NEAR(throughput, share, share * 0.05)
            << "flow " << i << " off the analytical max-min share";
    }
    EXPECT_EQ(flow_model->flowsFinished(),
              static_cast<std::uint64_t>(kSenders));
}

/** A slow sender uplink is the bottleneck for that flow only; the
 *  others re-share the receiver link when it frees up. */
TEST(FlowModel, SlowUplinkBoundsOnlyItsOwnFlow)
{
    constexpr double kDownCap = 1.2e8;
    constexpr double kSlowCap = 5e6;
    constexpr std::uint32_t kBytes = 1000000;

    Simulator sim(7);
    auto model = FlowModel::make();
    const int down = model->addLink({"down", kDownCap, 0.0});
    const int slow = model->addLink({"up0", kSlowCap, 0.0});
    model->setRoute(1, 0, {slow, down});
    for (int i = 1; i < 8; ++i) {
        const int up = model->addLink(
            {"up" + std::to_string(i), 1.25e9, 0.0});
        model->setRoute(1 + i, 0, {up, down});
    }
    Cluster cluster(sim, std::move(model));
    hw::Machine& receiver = cluster.addMachine(bareMachine("recv"));
    std::vector<hw::Machine*> senders;
    for (int i = 0; i < 8; ++i) {
        senders.push_back(&cluster.addMachine(
            bareMachine("send" + std::to_string(i))));
    }
    std::vector<SimTime> done_at(8, -1);
    for (int i = 0; i < 8; ++i) {
        sim.scheduleAt(0,
                       [&, i]() {
                           cluster.network().transfer(
                               senders[i], &receiver, kBytes,
                               [&, i]() { done_at[i] = sim.now(); });
                       },
                       "incast/start");
    }
    sim.run();
    // Flow 0 is pinned to its 5 MB/s uplink throughout: 0.2 s.
    EXPECT_NEAR(simTimeToSeconds(done_at[0]), kBytes / kSlowCap,
                1e-6);
    // The other seven share what the slow flow leaves of the
    // receiver link: (120 - 5) MB/s / 7 each.
    const double fast_share = (kDownCap - kSlowCap) / 7;
    for (int i = 1; i < 8; ++i) {
        EXPECT_NEAR(simTimeToSeconds(done_at[i]), kBytes / fast_share,
                    kBytes / fast_share * 0.05);
    }
}

// ------------------------------------------- topology generator

TEST(Topology, FourAryFatTreeCounts)
{
    FatTreeConfig config;
    config.arity = 4;
    config.oversubscription = 4.0;
    const Topology topo = TopologyBuilder::fatTree(config);
    EXPECT_EQ(topo.hostsPerEdge, 8);
    EXPECT_EQ(topo.hostCount, 64);
    EXPECT_EQ(topo.edgeCount, 8);
    EXPECT_EQ(topo.aggCount, 8);
    EXPECT_EQ(topo.coreCount, 4);
    // Directional links: 2 per host NIC + k^3 fabric links.
    EXPECT_EQ(topo.links.size(),
              static_cast<std::size_t>(2 * 64 + 4 * 4 * 4));
    EXPECT_EQ(topo.hostNames.front(), "h0");
    EXPECT_EQ(topo.hostNames.back(), "h63");
}

TEST(Topology, KAryLinkCountFormula)
{
    for (int k : {2, 4, 6, 8}) {
        FatTreeConfig config;
        config.arity = k;
        config.oversubscription = 1.0;
        const Topology topo = TopologyBuilder::fatTree(config);
        const int half = k / 2;
        EXPECT_EQ(topo.hostCount, k * half * half);
        EXPECT_EQ(topo.links.size(),
                  static_cast<std::size_t>(2 * topo.hostCount +
                                           k * k * k))
            << "k=" << k;
    }
}

TEST(Topology, PathSymmetryAndHopCounts)
{
    FatTreeConfig config;
    config.arity = 4;
    config.oversubscription = 2.0;
    const Topology topo = TopologyBuilder::fatTree(config);
    const int hosts_per_edge = topo.hostsPerEdge;
    const int hosts_per_pod = (config.arity / 2) * hosts_per_edge;
    for (int s = 0; s < topo.hostCount; ++s) {
        for (int d = 0; d < topo.hostCount; ++d) {
            if (s == d)
                continue;
            const auto& forward = topo.route(s, d);
            const auto& reverse = topo.route(d, s);
            // Symmetry: both directions climb the same number of
            // tiers, so hop counts (and total latency) match.
            EXPECT_EQ(forward.size(), reverse.size());
            std::size_t expected = 6;
            if (s / hosts_per_edge == d / hosts_per_edge)
                expected = 2;
            else if (s / hosts_per_pod == d / hosts_per_pod)
                expected = 4;
            ASSERT_EQ(forward.size(), expected)
                << "route " << s << " -> " << d;
            // Routes start on the source's up-link and end on the
            // destination's down-link.
            EXPECT_EQ(topo.links[forward.front()].name,
                      topo.hostNames[s] + ":up");
            EXPECT_EQ(topo.links[forward.back()].name,
                      topo.hostNames[d] + ":down");
        }
    }
}

TEST(Topology, RejectsBadParameters)
{
    FatTreeConfig odd;
    odd.arity = 3;
    EXPECT_THROW(TopologyBuilder::fatTree(odd),
                 std::invalid_argument);
    FatTreeConfig ratio;
    ratio.oversubscription = 0.0;
    EXPECT_THROW(TopologyBuilder::fatTree(ratio),
                 std::invalid_argument);
}

TEST(Topology, PopulateClusterAssignsNetIdsInHostOrder)
{
    FatTreeConfig config;
    config.arity = 2;
    const Topology topo = TopologyBuilder::fatTree(config);
    Simulator sim(1);
    Cluster cluster(sim, topo.makeModel());
    topo.populateCluster(cluster, bareMachine("proto"));
    ASSERT_EQ(cluster.machineCount(),
              static_cast<std::size_t>(topo.hostCount));
    for (int h = 0; h < topo.hostCount; ++h) {
        EXPECT_EQ(cluster.machines()[h]->name(), topo.hostNames[h]);
        EXPECT_EQ(cluster.machines()[h]->netId(), h);
    }
    EXPECT_THROW(topo.populateCluster(cluster, bareMachine("again")),
                 std::logic_error);
}

// -------------------------------- capacity-doubling metamorphic test

struct FlowCase {
    int from;
    int to;
    std::uint32_t bytes;
    double startSeconds;
};

std::vector<SimTime>
runTopologyFlows(double gbps_scale, std::vector<FlowCase> cases)
{
    FatTreeConfig config;
    config.arity = 4;
    config.oversubscription = 2.0;
    config.hostGbps = 1.0 * gbps_scale;
    config.fabricGbps = 1.0 * gbps_scale;
    const Topology topo = TopologyBuilder::fatTree(config);
    Simulator sim(11);
    Cluster cluster(sim, topo.makeModel());
    topo.populateCluster(cluster, bareMachine("proto"));
    std::vector<SimTime> done(cases.size(), -1);
    for (std::size_t i = 0; i < cases.size(); ++i) {
        sim.scheduleAt(secondsToSimTime(cases[i].startSeconds),
                       [&, i]() {
                           const FlowCase& c = cases[i];
                           cluster.network().transfer(
                               cluster.machines()[c.from],
                               cluster.machines()[c.to], c.bytes,
                               [&, i]() { done[i] = sim.now(); });
                       },
                       "meta/start");
    }
    sim.run();
    return done;
}

TEST(FlowModel, DoublingCapacitiesNeverSlowsAnyFlow)
{
    // A deterministic mixed workload: incast onto host 0 plus
    // cross-pod and same-edge background flows, staggered starts.
    std::vector<FlowCase> cases;
    for (int i = 0; i < 24; ++i) {
        FlowCase c;
        c.from = 1 + (i * 7) % 15;
        c.to = (i % 3 == 0) ? 0 : (i * 13 + 5) % 16;
        if (c.to == c.from)
            c.to = (c.to + 1) % 16;
        c.bytes = static_cast<std::uint32_t>(((i * 37) % 91 + 10)) *
                  4096u;
        c.startSeconds = (i % 7) * 1e-3;
        cases.push_back(c);
    }
    const std::vector<SimTime> base = runTopologyFlows(1.0, cases);
    const std::vector<SimTime> doubled = runTopologyFlows(2.0, cases);
    ASSERT_EQ(base.size(), doubled.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        ASSERT_GE(base[i], 0);
        ASSERT_GE(doubled[i], 0);
        // Monotonicity of max-min fair sharing in capacity: no flow
        // may complete later on the faster fabric (tick-rounding
        // slack only).
        EXPECT_LE(doubled[i], base[i] + kMicrosecond)
            << "flow " << i << " slowed down by doubled capacity";
    }
}

// ------------------------------------- machines.json v2 validation

std::unique_ptr<Cluster>
clusterFromText(Simulator& sim, const std::string& text)
{
    return Cluster::fromJson(sim, json::parse(text));
}

TEST(MachinesJsonV2, V1FileLoadsWithConstantModelAndInfoLog)
{
    Simulator sim(1);
    sim.logger().setLevel(LogLevel::Info);
    std::vector<std::string> lines;
    sim.logger().setHook(
        [&lines](const std::string& line) { lines.push_back(line); });
    auto cluster = clusterFromText(sim, R"({
        "wire_latency_us": 15,
        "loopback_latency_us": 3,
        "machines": [{"name": "m0", "cores": 4}]
    })");
    EXPECT_EQ(std::string(cluster->network().model().modelName()),
              "constant");
    bool announced = false;
    for (const std::string& line : lines) {
        if (line.find("constant network model assumed") !=
            std::string::npos)
            announced = true;
    }
    EXPECT_TRUE(announced)
        << "v1 fallback must be announced at Info level";
}

TEST(MachinesJsonV2, UnknownTopologyKeyGetsDidYouMean)
{
    Simulator sim(1);
    try {
        clusterFromText(sim, R"({
            "schema_version": 2,
            "network": {"model": "flow"},
            "topology": {"type": "fat_tree", "aritty": 4}
        })");
        FAIL() << "expected JsonError";
    } catch (const json::JsonError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("aritty"), std::string::npos);
        EXPECT_NE(what.find("arity"), std::string::npos)
            << "expected a did-you-mean suggestion, got: " << what;
    }
}

TEST(MachinesJsonV2, TopologyRequiresFlowModel)
{
    Simulator sim(1);
    EXPECT_THROW(clusterFromText(sim, R"({
        "schema_version": 2,
        "network": {"model": "constant"},
        "topology": {"type": "fat_tree"}
    })"),
                 json::JsonError);
}

TEST(MachinesJsonV2, TopologyConflictsWithExplicitSections)
{
    Simulator sim(1);
    EXPECT_THROW(clusterFromText(sim, R"({
        "schema_version": 2,
        "network": {"model": "flow"},
        "topology": {"type": "fat_tree"},
        "machines": [{"name": "m0"}]
    })"),
                 json::JsonError);
}

TEST(MachinesJsonV2, UnknownModelAndVersionAreRejected)
{
    Simulator sim(1);
    EXPECT_THROW(clusterFromText(sim, R"({
        "schema_version": 2,
        "network": {"model": "quantum"}
    })"),
                 json::JsonError);
    EXPECT_THROW(clusterFromText(sim, R"({
        "schema_version": 3,
        "machines": []
    })"),
                 json::JsonError);
}

TEST(MachinesJsonV2, GeneratedTopologyBuildsMachines)
{
    Simulator sim(1);
    auto cluster = clusterFromText(sim, R"({
        "schema_version": 2,
        "network": {"model": "flow", "external_latency_us": 20},
        "topology": {
            "type": "fat_tree", "arity": 4, "oversubscription": 4.0,
            "host_gbps": 10, "fabric_gbps": 10, "link_latency_us": 1,
            "hosts": {"prefix": "h", "cores": 8, "irq_cores": 2}
        }
    })");
    EXPECT_EQ(cluster->machineCount(), 64u);
    EXPECT_TRUE(cluster->hasMachine("h0"));
    EXPECT_TRUE(cluster->hasMachine("h63"));
    EXPECT_EQ(cluster->machine("h0").totalCores(), 8);
    EXPECT_EQ(std::string(cluster->network().model().modelName()),
              "flow");
}

TEST(MachinesJsonV2, ExplicitLinksAndRoutesWork)
{
    Simulator sim(1);
    auto cluster = clusterFromText(sim, R"({
        "schema_version": 2,
        "network": {"model": "flow"},
        "links": [{"name": "trunk", "gbps": 0.008, "latency_us": 10}],
        "routes": [{"from": "a", "to": "b", "links": ["trunk"],
                    "symmetric": true}],
        "machines": [{"name": "a", "cores": 2},
                     {"name": "b", "cores": 2}]
    })");
    // 0.008 Gb/s = 1e6 bytes/s; 500 kB takes 0.5 s + 10 us.
    SimTime done_at = -1;
    cluster->network().transfer(&cluster->machine("a"),
                                &cluster->machine("b"), 500000,
                                [&]() { done_at = sim.now(); });
    sim.run();
    EXPECT_EQ(done_at,
              secondsToSimTime(0.5) + secondsToSimTime(10e-6));
    // The symmetric route serves the reverse direction too.
    SimTime back_at = -1;
    cluster->network().transfer(&cluster->machine("b"),
                                &cluster->machine("a"), 0,
                                [&]() { back_at = sim.now(); });
    sim.run();
    EXPECT_EQ(back_at, done_at + secondsToSimTime(10e-6));
}

TEST(MachinesJsonV2, FlowModelNeedsTopologyOrExplicitSections)
{
    Simulator sim(1);
    EXPECT_THROW(clusterFromText(sim, R"({
        "schema_version": 2,
        "network": {"model": "flow"},
        "machines": [{"name": "a"}]
    })"),
                 json::JsonError);
}

TEST(MachinesJsonV2, UnknownMachineKeyRejectedInV1)
{
    Simulator sim(1);
    EXPECT_THROW(clusterFromText(sim, R"({
        "machines": [{"name": "m0", "coures": 4}]
    })"),
                 json::JsonError);
}

// ------------------------- end-to-end fat-tree fan-out + determinism

models::FanoutFatTreeParams
smallFatTreeParams(double qps, std::uint64_t seed)
{
    models::FanoutFatTreeParams params;
    params.run.qps = qps;
    params.run.seed = seed;
    params.run.warmupSeconds = 0.1;
    params.run.durationSeconds = 0.4;
    params.run.clientConnections = 64;
    params.fanout = 8;
    params.responseBytes = 16 * 1024;
    return params;
}

TEST(FanoutFatTree, RunsEndToEndOnGeneratedCluster)
{
    auto simulation = Simulation::fromBundle(
        models::fanoutFatTreeBundle(smallFatTreeParams(400.0, 3)));
    const RunReport report = simulation->run();
    EXPECT_GT(report.completed, 50u);
    EXPECT_GT(report.endToEnd.p99Ms, 0.0);
}

std::vector<runner::ReplicatedCurve>
runFlowGrid(int jobs)
{
    runner::RunnerOptions options;
    options.jobs = jobs;
    options.replications = 2;
    options.baseSeed = 17;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("fanout_fat_tree", {300.0, 600.0},
                          [](double qps, std::uint64_t seed) {
                              return Simulation::fromBundle(
                                  models::fanoutFatTreeBundle(
                                      smallFatTreeParams(qps, seed)));
                          });
    return sweep_runner.run();
}

TEST(FanoutFatTree, FlowModelDigestsIndependentOfThreadCount)
{
    const std::vector<runner::ReplicatedCurve> serial = runFlowGrid(1);
    for (int jobs : {2, 8}) {
        const std::vector<runner::ReplicatedCurve> other =
            runFlowGrid(jobs);
        ASSERT_EQ(serial.size(), other.size());
        for (std::size_t c = 0; c < serial.size(); ++c) {
            ASSERT_EQ(serial[c].points.size(),
                      other[c].points.size());
            for (std::size_t p = 0; p < serial[c].points.size();
                 ++p) {
                const auto& lhs = serial[c].points[p];
                const auto& rhs = other[c].points[p];
                ASSERT_EQ(lhs.replications.size(),
                          rhs.replications.size());
                for (std::size_t r = 0; r < lhs.replications.size();
                     ++r) {
                    EXPECT_EQ(lhs.replications[r].seed,
                              rhs.replications[r].seed);
                    EXPECT_EQ(lhs.replications[r].traceDigest,
                              rhs.replications[r].traceDigest)
                        << "jobs=" << jobs << " point=" << p
                        << " rep=" << r;
                    EXPECT_EQ(lhs.replications[r].report.completed,
                              rhs.replications[r].report.completed);
                }
            }
        }
    }
}

}  // namespace
}  // namespace uqsim
