/**
 * @file
 * Tests for the extension features: client request timeouts and
 * retries, fine-grained (RAPL-like) DVFS tables, and the timeout
 * accounting in reports.
 */

#include <gtest/gtest.h>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/hw/dvfs.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/applications.h"
#include "uqsim/random/distributions.h"
#include "uqsim/workload/client.h"

namespace uqsim {
namespace {

TEST(ClientTimeouts, NoTimeoutsBelowSaturation)
{
    models::ThriftEchoParams params;
    params.run.qps = 10000.0;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 1.0;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    bundle.client.asObject()["timeout_s"] = 0.05;
    auto simulation = Simulation::fromBundle(bundle);
    const RunReport report = simulation->run();
    EXPECT_EQ(report.timeouts, 0u);
    EXPECT_NEAR(report.achievedQps, 10000.0, 800.0);
}

TEST(ClientTimeouts, SaturationProducesTimeouts)
{
    models::ThriftEchoParams params;
    params.run.qps = 120000.0;  // far past ~52k capacity
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 1.0;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    bundle.client.asObject()["timeout_s"] = 0.02;
    auto simulation = Simulation::fromBundle(bundle);
    const RunReport report = simulation->run();
    EXPECT_GT(report.timeouts, 1000u);
    // Timed-out requests never enter the latency statistics, so the
    // recorded p99 stays bounded by the timeout plus in-flight time.
    EXPECT_LT(report.endToEnd.p99Ms, 25.0);
}

TEST(ClientTimeouts, CompletionsBeforeTimeoutAreRecorded)
{
    models::ThriftEchoParams params;
    params.run.qps = 5000.0;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 1.0;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    bundle.client.asObject()["timeout_s"] = 1.0;  // generous
    auto simulation = Simulation::fromBundle(bundle);
    const RunReport report = simulation->run();
    EXPECT_EQ(report.timeouts, 0u);
    EXPECT_GT(report.completed, 3000u);
}

TEST(ClientTimeouts, RetriesReissueRequests)
{
    models::ThriftEchoParams params;
    params.run.qps = 120000.0;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 1.0;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    bundle.client.asObject()["timeout_s"] = 0.02;
    bundle.client.asObject()["retries"] = 1;
    auto simulation = Simulation::fromBundle(bundle);
    simulation->run();
    const auto& client = *simulation->clients()[0];
    EXPECT_GT(client.retriesIssued(), 0u);
    EXPECT_LE(client.retriesIssued(), client.timeouts());
    // Generated counts original issues plus retries.
    EXPECT_GT(client.generated(),
              client.retriesIssued());
}

TEST(ClientTimeouts, ConfigParsesTimeoutFields)
{
    const auto config =
        workload::ClientConfig::fromJson(json::parse(R"({
        "front_service": "svc",
        "load": 100,
        "timeout_s": 0.25,
        "retries": 2})"));
    EXPECT_DOUBLE_EQ(config.timeout, 0.25);
    EXPECT_EQ(config.retries, 2);
}

// -------------------------------------------------- closed-loop mode

TEST(ClosedLoop, OutstandingBoundedByConnections)
{
    // A closed-loop client never has more requests in flight than
    // connections, so even a saturated server shows bounded latency
    // — the classic open-vs-closed contrast.
    models::ThriftEchoParams params;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 1.2;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    bundle.client.asObject().erase("load");
    bundle.client.asObject()["mode"] = "closed";
    bundle.client.asObject()["connections"] = 64;
    bundle.client.asObject()["think_time_s"] = 0.0;
    auto simulation = Simulation::fromBundle(bundle);
    const RunReport report = simulation->run();
    // 64 closed-loop connections drive the ~52 kQPS server at its
    // capacity...
    EXPECT_GT(report.achievedQps, 30000.0);
    // ...but latency stays bounded near connections/capacity instead
    // of exploding like the open-loop run at 120 kQPS does.
    EXPECT_LT(report.endToEnd.p99Ms, 10.0);
    EXPECT_LE(simulation->dispatcher().activeRequests(), 64u);
}

TEST(ClosedLoop, ThinkTimeThrottles)
{
    models::ThriftEchoParams params;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 1.2;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    bundle.client.asObject().erase("load");
    bundle.client.asObject()["mode"] = "closed";
    bundle.client.asObject()["connections"] = 32;
    bundle.client.asObject()["think_time_s"] = 0.01;
    auto simulation = Simulation::fromBundle(bundle);
    const RunReport report = simulation->run();
    // Interactive law: throughput ~ N / (think + response)
    // = 32 / ~10.1 ms ~ 3.2 kQPS.
    EXPECT_NEAR(report.achievedQps, 3200.0, 400.0);
}

TEST(ClosedLoop, UnknownModeThrows)
{
    EXPECT_THROW(workload::ClientConfig::fromJson(json::parse(R"({
        "front_service": "svc", "load": 10, "mode": "warp"})")),
                 json::JsonError);
}

TEST(FineGrainedDvfs, LinearTableShape)
{
    const hw::DvfsTable table = hw::DvfsTable::linear(1.2, 2.6, 57);
    EXPECT_EQ(table.stepCount(), 57u);
    EXPECT_DOUBLE_EQ(table.lowest(), 1.2);
    EXPECT_DOUBLE_EQ(table.nominal(), 2.6);
    // Step size 0.025 GHz.
    EXPECT_NEAR(table.frequencyAt(1) - table.frequencyAt(0), 0.025,
                1e-9);
    EXPECT_THROW(hw::DvfsTable::linear(1.2, 2.6, 1),
                 std::invalid_argument);
    EXPECT_THROW(hw::DvfsTable::linear(2.6, 1.2, 8),
                 std::invalid_argument);
    EXPECT_THROW(hw::DvfsTable::linear(0.0, 1.0, 8),
                 std::invalid_argument);
}

// ------------------------------------------- dynamic thread spawning

namespace {

/** Single proc stage (20 us), base 1 thread, spawning to @p max. */
ServiceModelPtr
dynamicModel(int max_threads)
{
    StageConfig stage;
    stage.id = 0;
    stage.name = "proc";
    stage.time = ServiceTimeModel(
        std::make_shared<random::DeterministicDistribution>(20e-6));
    PathConfig path;
    path.id = 0;
    path.name = "serve";
    path.stageIds = {0};
    auto model = std::make_shared<ServiceModel>(
        "elastic", std::vector<StageConfig>{stage},
        std::vector<PathConfig>{path});
    model->setDefaultThreads(1);
    model->setContextSwitchSeconds(0.0);
    DynamicThreadPolicy policy;
    policy.maxThreads = max_threads;
    policy.queueThreshold = 2;
    policy.spawnLatency = 50e-6;
    policy.idleTimeout = 1e-3;
    model->setDynamicThreads(policy);
    return model;
}

}  // namespace

TEST(DynamicThreads, PolicyParsesFromJson)
{
    const auto policy = DynamicThreadPolicy::fromJson(json::parse(R"({
        "max": 8, "queue_threshold": 3,
        "spawn_latency_us": 75, "idle_timeout_ms": 5})"));
    EXPECT_TRUE(policy.enabled());
    EXPECT_EQ(policy.maxThreads, 8);
    EXPECT_EQ(policy.queueThreshold, 3);
    EXPECT_DOUBLE_EQ(policy.spawnLatency, 75e-6);
    EXPECT_DOUBLE_EQ(policy.idleTimeout, 5e-3);
    EXPECT_THROW(
        DynamicThreadPolicy::fromJson(json::parse(R"({"max": -1})")),
        json::JsonError);
}

TEST(DynamicThreads, RequiresMultiThreadedModel)
{
    auto model = dynamicModel(4);
    model->setDynamicThreads({});  // disable first
    model->setExecutionModel(ExecutionModel::Simple);
    DynamicThreadPolicy policy;
    policy.maxThreads = 4;
    EXPECT_THROW(model->setDynamicThreads(policy),
                 std::invalid_argument);
}

TEST(DynamicThreads, BurstSpawnsWorkersUpToMax)
{
    Simulator sim(1);
    MicroserviceInstance instance(sim, dynamicModel(4), "elastic.0",
                                  nullptr,
                                  InstanceConfig{.cores = 4});
    JobFactory jobs;
    int done = 0;
    SimTime last_completion = 0;
    instance.setOnJobDone([&](JobPtr) {
        ++done;
        last_completion = sim.now();
    });
    for (int i = 0; i < 40; ++i) {
        JobPtr job = jobs.createRoot(0, 64);
        job->connectionId = i;
        job->execPathId = 0;
        instance.accept(std::move(job));
    }
    sim.run();
    EXPECT_EQ(done, 40);
    EXPECT_GT(instance.spawnedThreads(), 0u);
    EXPECT_EQ(instance.peakThreads(), 4);
    // 40 jobs x 20us on up to 4 workers with 50us spawn latency:
    // far faster than the 800us a single worker would need.  (The
    // drained clock runs further: idle-retire timers fire after.)
    EXPECT_LT(last_completion, secondsToSimTime(450e-6));
}

TEST(DynamicThreads, SurplusWorkersRetireWhenIdle)
{
    Simulator sim(1);
    MicroserviceInstance instance(sim, dynamicModel(4), "elastic.0",
                                  nullptr,
                                  InstanceConfig{.cores = 4});
    JobFactory jobs;
    for (int i = 0; i < 40; ++i) {
        JobPtr job = jobs.createRoot(0, 64);
        job->connectionId = i;
        job->execPathId = 0;
        instance.accept(std::move(job));
    }
    sim.run();
    // After the burst drains and idle timeouts fire, the worker
    // count is back at the base.
    EXPECT_EQ(instance.threads(), instance.baseThreads());
    EXPECT_EQ(instance.idleThreads(), instance.baseThreads());
}

TEST(DynamicThreads, SpawnNeverExceedsMax)
{
    Simulator sim(1);
    MicroserviceInstance instance(sim, dynamicModel(3), "elastic.0",
                                  nullptr,
                                  InstanceConfig{.cores = 4});
    JobFactory jobs;
    for (int burst = 0; burst < 5; ++burst) {
        sim.scheduleAt(secondsToSimTime(burst * 2e-3), [&, burst]() {
            for (int i = 0; i < 30; ++i) {
                JobPtr job = jobs.createRoot(sim.now(), 64);
                job->connectionId = i;
                job->execPathId = 0;
                instance.accept(std::move(job));
            }
        });
    }
    sim.run();
    EXPECT_LE(instance.peakThreads(), 3);
}

TEST(FineGrainedDvfs, PowerBundleUsesRequestedSteps)
{
    models::PowerTwoTierParams params;
    params.run.qps = 100.0;
    params.run.warmupSeconds = 0.1;
    params.run.durationSeconds = 0.3;
    params.dvfsSteps = 15;
    auto simulation =
        Simulation::fromBundle(models::powerTwoTierBundle(params));
    EXPECT_EQ(simulation->deployment()
                  .instance("nginx", 0)
                  .dvfs()
                  ->table()
                  .stepCount(),
              15u);
}

}  // namespace
}  // namespace uqsim
