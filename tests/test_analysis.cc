/**
 * @file
 * Tests for the analysis utilities: the closed-form queueing-theory
 * library (cross-checked against the simulator), request tracing,
 * and the SLO capacity search.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "uqsim/core/app/trace.h"
#include "uqsim/core/sim/sweep.h"
#include "uqsim/models/applications.h"
#include "uqsim/stats/queueing_theory.h"

namespace uqsim {
namespace {

// ------------------------------------------------- queueing formulas

TEST(QueueingFormulas, BasicsAndValidation)
{
    EXPECT_DOUBLE_EQ(stats::offeredLoadErlangs(500.0, 1000.0), 0.5);
    EXPECT_DOUBLE_EQ(stats::utilization(500.0, 1000.0, 2), 0.25);
    EXPECT_THROW(stats::utilization(1.0, 0.0, 1),
                 std::invalid_argument);
    EXPECT_THROW(stats::erlangC(1000.0, 1000.0, 1),
                 std::invalid_argument);  // unstable
    EXPECT_THROW(stats::mm1SojournQuantile(500.0, 1000.0, 1.5),
                 std::invalid_argument);
}

TEST(QueueingFormulas, Mm1KnownValues)
{
    // rho = 0.5: W = 1/(mu-lambda) = 2 ms, L = 1, Wq = 1 ms.
    EXPECT_NEAR(stats::mmkMeanSojourn(500.0, 1000.0, 1), 2e-3, 1e-12);
    EXPECT_NEAR(stats::mmkMeanWait(500.0, 1000.0, 1), 1e-3, 1e-12);
    EXPECT_DOUBLE_EQ(stats::mm1MeanJobs(500.0, 1000.0), 1.0);
    // p99 of exp(mu - lambda): ln(100)/500.
    EXPECT_NEAR(stats::mm1SojournQuantile(500.0, 1000.0, 0.99),
                std::log(100.0) / 500.0, 1e-12);
}

TEST(QueueingFormulas, ErlangCKnownValue)
{
    // M/M/2 with a = 1.6: C = 6.4 / (2.6 + 6.4) = 0.7111...
    EXPECT_NEAR(stats::erlangC(1600.0, 1000.0, 2), 6.4 / 9.0, 1e-12);
    // Erlang-C reduces to rho for k = 1.
    EXPECT_NEAR(stats::erlangC(700.0, 1000.0, 1), 0.7, 1e-12);
}

TEST(QueueingFormulas, PollaczekKhinchineLimits)
{
    // scv = 1 (exponential) reproduces M/M/1.
    EXPECT_NEAR(stats::mg1MeanWait(500.0, 1e-3, 1.0),
                stats::mmkMeanWait(500.0, 1000.0, 1), 1e-12);
    // Deterministic service halves the queueing delay.
    EXPECT_NEAR(stats::mg1MeanWait(500.0, 1e-3, 0.0),
                0.5 * stats::mmkMeanWait(500.0, 1000.0, 1), 1e-12);
    // Heavier-tailed service queues more.
    EXPECT_GT(stats::mg1MeanWait(500.0, 1e-3, 4.0),
              stats::mg1MeanWait(500.0, 1e-3, 1.0));
}

TEST(QueueingFormulas, FanoutHitProbability)
{
    EXPECT_DOUBLE_EQ(stats::fanoutHitProbability(0.0, 100), 0.0);
    EXPECT_DOUBLE_EQ(stats::fanoutHitProbability(1.0, 3), 1.0);
    EXPECT_NEAR(stats::fanoutHitProbability(0.01, 100),
                1.0 - std::pow(0.99, 100), 1e-12);
}

TEST(QueueingFormulas, SimulatorMatchesMg1ForDeterministicService)
{
    // M/D/1 cross-check: tail-at-scale leaves use the simple
    // execution model, so build a 1-leaf "cluster" with
    // deterministic service by reusing the bundle and measuring the
    // mean sojourn.  (The full M/M/k sweep lives in
    // test_queueing.cc; this adds the G != M case via PK.)
    models::TailAtScaleParams params;
    params.run.qps = 600.0;
    params.run.warmupSeconds = 1.0;
    params.run.durationSeconds = 21.0;
    params.run.clientConnections = 64;
    params.clusterSize = 1;
    params.slowFraction = 0.0;
    params.leafMeanSeconds = 1e-3;
    ConfigBundle bundle = models::tailAtScaleBundle(params);
    // Replace the leaf's exponential service with deterministic.
    for (json::JsonValue& service : bundle.services) {
        if (service.at("service_name").asString() != "leaf")
            continue;
        json::JsonValue det = json::JsonValue::makeObject();
        det.asObject()["type"] = "deterministic";
        det.asObject()["value"] = 1e-3;
        service.asObject()["stages"]
            .asArray()[0]
            .asObject()["service_time"]
            .asObject()["base"] = std::move(det);
    }
    auto simulation = Simulation::fromBundle(bundle);
    const RunReport report = simulation->run();
    // Expected: coordinator (2 x ~1us) + M/D/1 leaf sojourn + wire
    // latencies (4 hops x 20us).
    const double expected =
        stats::mg1MeanSojourn(600.0, 1e-3, 0.0) + 4 * 20e-6 + 2e-6;
    EXPECT_NEAR(report.endToEnd.meanMs, expected * 1e3,
                expected * 1e3 * 0.08);
}

// -------------------------------------------------------- tracing

TEST(TraceRecorder, SamplingIsDeterministic)
{
    TraceRecorder recorder(0.5, 16);
    int sampled = 0;
    for (JobId root = 1; root <= 2000; ++root) {
        if (recorder.sampled(root)) {
            ++sampled;
            EXPECT_TRUE(recorder.sampled(root));  // stable
        }
    }
    EXPECT_NEAR(sampled / 2000.0, 0.5, 0.05);
    EXPECT_TRUE(TraceRecorder(1.0).sampled(123));
    EXPECT_FALSE(TraceRecorder(0.0).sampled(123));
    EXPECT_THROW(TraceRecorder(1.5), std::invalid_argument);
    EXPECT_THROW(TraceRecorder(0.5, 0), std::invalid_argument);
}

TEST(TraceRecorder, RecordsSpansThroughDispatcher)
{
    models::TwoTierParams params;
    params.run.qps = 1000.0;
    params.run.warmupSeconds = 0.0;
    params.run.durationSeconds = 0.5;
    auto simulation =
        Simulation::fromBundle(models::twoTierBundle(params));
    TraceRecorder recorder(1.0, 64);
    simulation->dispatcher().attachTracer(&recorder);
    simulation->run();
    ASSERT_FALSE(recorder.traces().empty());
    const RequestTrace& trace = recorder.traces().front();
    // 2-tier path: nginx request, memcached, nginx response.
    ASSERT_EQ(trace.spans.size(), 3u);
    EXPECT_EQ(recorder.serviceName(trace.spans[0].serviceId), "nginx");
    EXPECT_EQ(recorder.serviceName(trace.spans[1].serviceId),
              "memcached");
    EXPECT_EQ(recorder.serviceName(trace.spans[2].serviceId), "nginx");
    EXPECT_GT(trace.completed, trace.started);
    for (const TraceSpan& span : trace.spans) {
        EXPECT_GE(span.enter, trace.started);
        EXPECT_GE(span.leave, span.enter);
        EXPECT_LE(span.leave, trace.completed);
    }
    // Spans are causally ordered.
    EXPECT_LE(trace.spans[0].enter, trace.spans[1].enter);
    EXPECT_LE(trace.spans[1].enter, trace.spans[2].enter);
    // Waterfall rendering includes every service.
    const std::string art = recorder.waterfall(trace);
    EXPECT_NE(art.find("nginx"), std::string::npos);
    EXPECT_NE(art.find("memcached"), std::string::npos);
}

TEST(TraceRecorder, CapacityEvictsOldest)
{
    models::ThriftEchoParams params;
    params.run.qps = 2000.0;
    params.run.warmupSeconds = 0.0;
    params.run.durationSeconds = 0.5;
    auto simulation =
        Simulation::fromBundle(models::thriftEchoBundle(params));
    TraceRecorder recorder(1.0, 10);
    simulation->dispatcher().attachTracer(&recorder);
    simulation->run();
    EXPECT_EQ(recorder.traces().size(), 10u);
}

TEST(TraceRecorder, SpanClosingAtTimeZeroIsClosed)
{
    // SimTime 0 is a legitimate instant; a span that enters and
    // leaves at 0 must not read as "still open" (the old sentinel).
    TraceRecorder recorder(1.0, 4);
    Job job;
    job.id = 7;
    job.rootId = 7;
    job.pathNodeId = 0;
    recorder.recordStart(job, 0);
    recorder.recordEnter(job, 0, 0);
    recorder.recordLeave(job, 0);
    // A second enter of the same job copy must open a fresh span,
    // not re-close the first one.
    job.pathNodeId = 1;
    recorder.recordEnter(job, 0, 5);
    recorder.recordLeave(job, 9);
    recorder.recordComplete(job, 9);
    ASSERT_EQ(recorder.traces().size(), 1u);
    const RequestTrace& trace = recorder.traces().front();
    ASSERT_EQ(trace.spans.size(), 2u);
    EXPECT_EQ(trace.spans[0].leave, 0);
    EXPECT_NE(trace.spans[0].leave, kTraceOpen);
    EXPECT_EQ(trace.spans[1].leave, 9);
    EXPECT_EQ(trace.completed, 9);
}

TEST(TraceRecorder, CompletedAtTimeZeroIsComplete)
{
    TraceRecorder recorder(1.0, 4);
    Job job;
    job.id = 3;
    job.rootId = 3;
    recorder.recordStart(job, 0);
    recorder.recordComplete(job, 0);
    ASSERT_EQ(recorder.traces().size(), 1u);
    EXPECT_EQ(recorder.traces().front().completed, 0);
    EXPECT_NE(recorder.traces().front().completed, kTraceOpen);
    EXPECT_EQ(recorder.activeTraces(), 0u);
}

TEST(TraceRecorder, RecordStartDoesNotClobberActiveTrace)
{
    // Retry/hedge machinery can re-enter the root request; the spans
    // already collected must survive the second recordStart.
    TraceRecorder recorder(1.0, 4);
    Job job;
    job.id = 11;
    job.rootId = 11;
    job.pathNodeId = 0;
    recorder.recordStart(job, 100);
    recorder.recordEnter(job, 0, 110);
    recorder.recordLeave(job, 120);
    recorder.recordStart(job, 130);  // re-entry: must be a no-op
    recorder.recordComplete(job, 140);
    ASSERT_EQ(recorder.traces().size(), 1u);
    const RequestTrace& trace = recorder.traces().front();
    EXPECT_EQ(trace.started, 100);
    ASSERT_EQ(trace.spans.size(), 1u);
    EXPECT_EQ(trace.spans[0].enter, 110);
    EXPECT_EQ(trace.spans[0].leave, 120);
}

// ------------------------------------------------- capacity search

TEST(CapacitySearch, FindsThriftSloCapacity)
{
    auto factory = [](double qps) {
        models::ThriftEchoParams params;
        params.run.qps = qps;
        params.run.warmupSeconds = 0.3;
        params.run.durationSeconds = 1.3;
        return Simulation::fromBundle(
            models::thriftEchoBundle(params));
    };
    const CapacitySearchResult result =
        findSloCapacity(factory, /*slo_p99_ms=*/1.0, 5000.0,
                        120000.0, 0.08);
    // The echo server's 1 ms-p99 capacity sits between 40k and the
    // ~52 kQPS saturation point.
    EXPECT_GT(result.capacityQps, 35000.0);
    EXPECT_LT(result.capacityQps, 60000.0);
    EXPECT_LE(result.atCapacity.endToEnd.p99Ms, 1.0);
    EXPECT_GT(result.iterations, 2);
}

TEST(CapacitySearch, ReturnsZeroWhenLowerBoundFails)
{
    auto factory = [](double qps) {
        models::ThriftEchoParams params;
        params.run.qps = qps;
        params.run.warmupSeconds = 0.2;
        params.run.durationSeconds = 0.7;
        return Simulation::fromBundle(
            models::thriftEchoBundle(params));
    };
    const CapacitySearchResult result =
        findSloCapacity(factory, /*slo_p99_ms=*/0.01, 5000.0,
                        20000.0);
    EXPECT_DOUBLE_EQ(result.capacityQps, 0.0);
}

TEST(CapacitySearch, ReturnsHighWhenEverythingMeets)
{
    auto factory = [](double qps) {
        models::ThriftEchoParams params;
        params.run.qps = qps;
        params.run.warmupSeconds = 0.2;
        params.run.durationSeconds = 0.7;
        return Simulation::fromBundle(
            models::thriftEchoBundle(params));
    };
    const CapacitySearchResult result = findSloCapacity(
        factory, /*slo_p99_ms=*/50.0, 1000.0, 10000.0);
    EXPECT_DOUBLE_EQ(result.capacityQps, 10000.0);
    EXPECT_EQ(result.iterations, 2);
}

TEST(CapacitySearch, ValidatesArguments)
{
    auto factory = [](double) -> std::unique_ptr<Simulation> {
        return nullptr;
    };
    EXPECT_THROW(findSloCapacity(factory, 1.0, 0.0, 100.0),
                 std::invalid_argument);
    EXPECT_THROW(findSloCapacity(factory, 1.0, 100.0, 50.0),
                 std::invalid_argument);
    EXPECT_THROW(findSloCapacity(factory, -1.0, 10.0, 100.0),
                 std::invalid_argument);
}

}  // namespace
}  // namespace uqsim
