/**
 * @file
 * Tests for the harness robustness layer: the failure taxonomy,
 * crash-isolated sweeps with partial-result salvage, the run
 * journal and --resume semantics, the stall watchdog / event
 * budget, and the engine invariant auditor.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#endif

#include "uqsim/core/engine/audit.h"
#include "uqsim/core/engine/run_control.h"
#include "uqsim/core/sim/audit.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/json/json_writer.h"
#include "uqsim/models/applications.h"
#include "uqsim/runner/failure.h"
#include "uqsim/runner/run_journal.h"
#include "uqsim/runner/sweep_runner.h"
#include "uqsim/runner/watchdog.h"
#include "uqsim/snapshot/checkpoint.h"

namespace uqsim {
namespace {

models::ThriftEchoParams
thriftParams(double qps, std::uint64_t seed)
{
    models::ThriftEchoParams params;
    params.run.qps = qps;
    params.run.seed = seed;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 0.8;
    return params;
}

std::unique_ptr<Simulation>
makeThrift(double qps, std::uint64_t seed)
{
    return Simulation::fromBundle(
        models::thriftEchoBundle(thriftParams(qps, seed)));
}

runner::ReplicatedFactory
thriftFactory()
{
    return [](double qps, std::uint64_t seed) {
        return makeThrift(qps, seed);
    };
}

/** Unique-ish temp path per test (ctest runs tests in parallel). */
std::string
tempPath(const std::string& stem)
{
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return "harness_" + std::string(info->name()) + "_" + stem +
           ".jsonl";
}

struct FileJanitor {
    std::vector<std::string> paths;
    ~FileJanitor()
    {
        for (const std::string& path : paths)
            std::remove(path.c_str());
    }
    const std::string&
    track(const std::string& path)
    {
        paths.push_back(path);
        return paths.back();
    }
};

// ---------------------------------------------------------------------
// Failure taxonomy

runner::FailureKind
classify(std::exception_ptr error, std::string* message = nullptr)
{
    std::string scratch;
    return runner::classifyException(error,
                                     message ? message : &scratch);
}

template <typename E>
std::exception_ptr
thrown(E&& error)
{
    return std::make_exception_ptr(std::forward<E>(error));
}

TEST(FailureTaxonomy, ClassifiesByExceptionType)
{
    EXPECT_EQ(classify(thrown(std::invalid_argument("bad knob"))),
              runner::FailureKind::ConfigError);
    EXPECT_EQ(classify(thrown(std::logic_error("protocol"))),
              runner::FailureKind::ConfigError);
    EXPECT_EQ(classify(thrown(json::JsonError("parse"))),
              runner::FailureKind::ConfigError);
    EXPECT_EQ(classify(thrown(EngineInvariantError("leaked slot"))),
              runner::FailureKind::InvariantViolation);
    EXPECT_EQ(classify(thrown(SimulationAbortError(
                  AbortReason::Stall, "frozen"))),
              runner::FailureKind::Timeout);
    EXPECT_EQ(classify(thrown(std::runtime_error("boom"))),
              runner::FailureKind::InternalError);

    std::string message;
    classify(thrown(std::runtime_error("boom")), &message);
    EXPECT_NE(message.find("boom"), std::string::npos);
}

TEST(FailureTaxonomy, InvariantBeatsLogicErrorBase)
{
    // EngineInvariantError derives std::logic_error; the classifier
    // must pick the more specific taxonomy bucket.
    EXPECT_EQ(classify(thrown(EngineInvariantError("x"))),
              runner::FailureKind::InvariantViolation);
}

TEST(FailureTaxonomy, NamesRoundTrip)
{
    const runner::FailureKind kinds[] = {
        runner::FailureKind::None,
        runner::FailureKind::ConfigError,
        runner::FailureKind::InvariantViolation,
        runner::FailureKind::Timeout,
        runner::FailureKind::InternalError,
    };
    for (runner::FailureKind kind : kinds) {
        EXPECT_EQ(runner::failureKindFromName(
                      runner::failureKindName(kind)),
                  kind);
    }
    EXPECT_THROW(runner::failureKindFromName("nonsense"),
                 std::invalid_argument);
}

// ---------------------------------------------------------------------
// Crash isolation and salvage

TEST(CrashIsolation, ThrowingPointIsSalvagedAround)
{
    runner::RunnerOptions options;
    options.jobs = 2;
    options.replications = 2;
    options.baseSeed = 7;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep(
        "mixed", {1000.0, 2000.0, 3000.0},
        [](double qps,
           std::uint64_t seed) -> std::unique_ptr<Simulation> {
            if (qps == 2000.0)
                throw std::runtime_error("deliberate failure");
            return makeThrift(qps, seed);
        });
    const std::vector<runner::ReplicatedCurve> curves =
        sweep_runner.run();

    ASSERT_EQ(curves.size(), 1u);
    ASSERT_EQ(curves[0].points.size(), 3u);
    EXPECT_EQ(sweep_runner.failedJobs(), 2);
    EXPECT_EQ(curves[0].failedReplications(), 2);

    const runner::ReplicatedPoint& good = curves[0].points[0];
    const runner::ReplicatedPoint& bad = curves[0].points[1];

    EXPECT_FALSE(good.degraded());
    EXPECT_EQ(good.merged, 2);
    EXPECT_GT(good.pooled.count(), 0u);

    EXPECT_TRUE(bad.degraded());
    EXPECT_EQ(bad.merged, 0);
    ASSERT_EQ(bad.replications.size(), 2u);
    for (const runner::ReplicationResult& rep : bad.replications) {
        EXPECT_FALSE(rep.ok());
        EXPECT_EQ(rep.failure, runner::FailureKind::InternalError);
        EXPECT_NE(rep.error.find("deliberate failure"),
                  std::string::npos);
    }

    // Degradation is visible in the merged report and the table.
    EXPECT_TRUE(bad.mergedReport().degraded);
    EXPECT_EQ(bad.mergedReport().replicationsMerged, 0);
    EXPECT_EQ(good.mergedReport().replicationsMerged, 2);
    EXPECT_FALSE(good.mergedReport().degraded);
    EXPECT_NE(runner::formatReplicatedTable(curves).find("!"),
              std::string::npos);
}

TEST(CrashIsolation, HealthyResultsMatchCleanRunBitwise)
{
    // The salvage path must not perturb surviving replications: their
    // digests and metrics are bitwise identical to an all-healthy run
    // of the same grid.
    auto run_grid = [](bool sabotage) {
        runner::RunnerOptions options;
        options.jobs = 2;
        options.replications = 2;
        options.baseSeed = 5;
        runner::SweepRunner sweep_runner(options);
        sweep_runner.addSweep(
            "grid", {1500.0, 2500.0},
            [sabotage](double qps,
                       std::uint64_t seed) -> std::unique_ptr<Simulation> {
                if (sabotage && qps == 2500.0)
                    throw std::runtime_error("sabotaged");
                return makeThrift(qps, seed);
            });
        return sweep_runner.run();
    };
    const std::vector<runner::ReplicatedCurve> clean = run_grid(false);
    const std::vector<runner::ReplicatedCurve> salvaged = run_grid(true);

    const runner::ReplicatedPoint& clean_point = clean[0].points[0];
    const runner::ReplicatedPoint& salvaged_point =
        salvaged[0].points[0];
    ASSERT_EQ(clean_point.replications.size(),
              salvaged_point.replications.size());
    for (std::size_t r = 0; r < clean_point.replications.size(); ++r) {
        EXPECT_EQ(clean_point.replications[r].traceDigest,
                  salvaged_point.replications[r].traceDigest);
        EXPECT_EQ(clean_point.replications[r].report.endToEnd.p99Ms,
                  salvaged_point.replications[r].report.endToEnd.p99Ms);
    }
    EXPECT_EQ(clean_point.p99Ci.halfWidth,
              salvaged_point.p99Ci.halfWidth);
}

TEST(CrashIsolation, PropagatePolicyRethrowsFirstInGridOrder)
{
    runner::RunnerOptions options;
    options.jobs = 2;
    options.failurePolicy = runner::FailurePolicy::Propagate;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep(
        "bad", {1000.0, 2000.0},
        [](double qps,
           std::uint64_t seed) -> std::unique_ptr<Simulation> {
            if (qps > 1500.0)
                throw std::runtime_error("boom");
            return makeThrift(qps, seed);
        });
    EXPECT_THROW(sweep_runner.run(), std::runtime_error);
}

TEST(CrashIsolation, FactoryProtocolViolationIsConfigError)
{
    runner::SweepRunner sweep_runner;
    sweep_runner.addSweep("null", {1000.0},
                          [](double, std::uint64_t) {
                              return std::unique_ptr<Simulation>();
                          });
    const std::vector<runner::ReplicatedCurve> curves =
        sweep_runner.run();
    const runner::ReplicationResult& rep =
        curves[0].points[0].replications[0];
    EXPECT_EQ(rep.failure, runner::FailureKind::ConfigError);
    EXPECT_NE(rep.error.find("finalized"), std::string::npos);
}

// ---------------------------------------------------------------------
// Run journal

TEST(RunJournal, EntryJsonRoundTripsExactly)
{
    runner::JournalEntry entry;
    entry.sweep = "thrift";
    entry.point = 3;
    entry.replication = 2;
    entry.qps = 12345.678;
    entry.seed = 0xDEADBEEFCAFEF00DULL;
    entry.status = runner::FailureKind::None;
    entry.traceDigest = 0xFFFFFFFFFFFFFFFFULL;
    entry.achievedQps = 12000.25;
    entry.meanMs = 1.5;
    entry.p50Ms = 1.25;
    entry.p95Ms = 2.5;
    entry.p99Ms = 3.75;
    entry.maxMs = 9.0;
    entry.completed = 12000;
    entry.generated = 12345;
    entry.events = 987654321;

    const runner::JournalEntry back = runner::JournalEntry::fromJson(
        json::parse(json::write(entry.toJson())));
    EXPECT_EQ(back.sweep, entry.sweep);
    EXPECT_EQ(back.point, entry.point);
    EXPECT_EQ(back.replication, entry.replication);
    EXPECT_EQ(back.qps, entry.qps);
    // Seeds and digests are full-range uint64 (hex-encoded in the
    // JSON); they must survive without truncation.
    EXPECT_EQ(back.seed, entry.seed);
    EXPECT_EQ(back.traceDigest, entry.traceDigest);
    EXPECT_EQ(back.achievedQps, entry.achievedQps);
    EXPECT_EQ(back.p99Ms, entry.p99Ms);
    EXPECT_EQ(back.events, entry.events);
    EXPECT_TRUE(back.ok());
}

TEST(RunJournal, FailedEntryCarriesTaxonomy)
{
    runner::JournalEntry entry;
    entry.sweep = "s";
    entry.status = runner::FailureKind::Timeout;
    entry.error = "aborted (stall)";
    const runner::JournalEntry back = runner::JournalEntry::fromJson(
        json::parse(json::write(entry.toJson())));
    EXPECT_EQ(back.status, runner::FailureKind::Timeout);
    EXPECT_EQ(back.error, "aborted (stall)");
    EXPECT_FALSE(back.ok());
}

TEST(RunJournal, WriterCreatesHeaderAndIndexLoads)
{
    FileJanitor janitor;
    const std::string path = janitor.track(tempPath("journal"));
    {
        runner::JournalWriter writer(path);
        runner::JournalEntry entry;
        entry.sweep = "a";
        entry.point = 0;
        entry.replication = 0;
        entry.qps = 100.0;
        entry.seed = 1;
        writer.append(entry);
        entry.replication = 1;
        entry.status = runner::FailureKind::InternalError;
        entry.error = "x";
        writer.append(entry);
    }
    const runner::JournalIndex index = runner::JournalIndex::load(path);
    EXPECT_EQ(index.entries.size(), 2u);
    EXPECT_EQ(index.skippedLines, 0u);
    ASSERT_NE(index.find("a", 0, 0), nullptr);
    EXPECT_TRUE(index.find("a", 0, 0)->ok());
    ASSERT_NE(index.find("a", 0, 1), nullptr);
    EXPECT_FALSE(index.find("a", 0, 1)->ok());
    EXPECT_EQ(index.find("a", 0, 2), nullptr);
    EXPECT_EQ(index.find("b", 0, 0), nullptr);
}

TEST(RunJournal, LastWriteWinsAndTruncatedLinesAreSkipped)
{
    FileJanitor janitor;
    const std::string path = janitor.track(tempPath("journal"));
    {
        runner::JournalWriter writer(path);
        runner::JournalEntry entry;
        entry.sweep = "a";
        entry.status = runner::FailureKind::Timeout;
        writer.append(entry);
        entry.status = runner::FailureKind::None;
        writer.append(entry);  // the re-run supersedes the failure
    }
    {
        // Simulate a crash mid-append: a truncated trailing line.
        std::ofstream out(path, std::ios::app | std::ios::binary);
        out << "{\"sweep\":\"a\",\"point\"";
    }
    const runner::JournalIndex index = runner::JournalIndex::load(path);
    EXPECT_EQ(index.entries.size(), 1u);
    EXPECT_EQ(index.skippedLines, 1u);
    // The drop is surfaced, not silent: one warning naming the file
    // and line so the harness (and the user) can see what was lost.
    ASSERT_EQ(index.warnings.size(), 1u);
    EXPECT_NE(index.warnings[0].find(path), std::string::npos)
        << index.warnings[0];
    EXPECT_NE(index.warnings[0].find(":4"), std::string::npos)
        << index.warnings[0];
    ASSERT_NE(index.find("a", 0, 0), nullptr);
    EXPECT_TRUE(index.find("a", 0, 0)->ok());
}

TEST(RunJournal, RejectsHeaderlessOrMissingFiles)
{
    FileJanitor janitor;
    EXPECT_THROW(runner::JournalIndex::load("no_such_journal.jsonl"),
                 std::runtime_error);
    const std::string path = janitor.track(tempPath("headerless"));
    {
        std::ofstream out(path, std::ios::binary);
        out << "{\"sweep\":\"a\"}\n";
    }
    EXPECT_THROW(runner::JournalIndex::load(path), std::runtime_error);
}

TEST(RunJournal, SweepWritesJournalAndResumeSkipsCompletedJobs)
{
    FileJanitor janitor;
    const std::string path = janitor.track(tempPath("journal"));
    const std::vector<double> loads = {1000.0, 2000.0, 3000.0};

    // Pass 1: the 2000-qps point fails every replication.
    std::vector<runner::ReplicatedCurve> first;
    {
        runner::RunnerOptions options;
        options.jobs = 2;
        options.replications = 2;
        options.baseSeed = 9;
        options.journalPath = path;
        runner::SweepRunner sweep_runner(options);
        sweep_runner.addSweep(
            "grid", loads,
            [](double qps,
               std::uint64_t seed) -> std::unique_ptr<Simulation> {
                if (qps == 2000.0)
                    throw std::runtime_error("first-pass failure");
                return makeThrift(qps, seed);
            });
        first = sweep_runner.run();
        EXPECT_EQ(sweep_runner.failedJobs(), 2);
    }
    {
        const runner::JournalIndex index =
            runner::JournalIndex::load(path);
        EXPECT_EQ(index.entries.size(), 6u);
    }

    // Pass 2: resume.  Only the failed jobs may re-run.
    std::atomic<int> built{0};
    runner::RunnerOptions options;
    options.jobs = 2;
    options.replications = 2;
    options.baseSeed = 9;
    options.journalPath = path;
    options.resumePath = path;
    runner::SweepRunner resumed(options);
    resumed.addSweep("grid", loads,
                     [&built](double qps, std::uint64_t seed) {
                         built.fetch_add(1);
                         return makeThrift(qps, seed);
                     });
    const std::vector<runner::ReplicatedCurve> second = resumed.run();

    EXPECT_EQ(built.load(), 2);  // just the two failed replications
    EXPECT_EQ(resumed.restoredJobs(), 4);
    EXPECT_EQ(resumed.failedJobs(), 0);

    // Restored results carry the exact digests and metrics of pass 1,
    // and the across-replication CIs rebuild bitwise.
    for (std::size_t p = 0; p < loads.size(); p += 2) {
        const runner::ReplicatedPoint& a = first[0].points[p];
        const runner::ReplicatedPoint& b = second[0].points[p];
        ASSERT_EQ(b.replications.size(), 2u);
        for (std::size_t r = 0; r < 2; ++r) {
            EXPECT_TRUE(b.replications[r].restored);
            EXPECT_EQ(a.replications[r].traceDigest,
                      b.replications[r].traceDigest);
            EXPECT_EQ(a.replications[r].report.endToEnd.p99Ms,
                      b.replications[r].report.endToEnd.p99Ms);
        }
        EXPECT_EQ(a.p99Ci.halfWidth, b.p99Ci.halfWidth);
        EXPECT_EQ(a.meanCi.halfWidth, b.meanCi.halfWidth);
        // Restored points cannot rebuild the pooled latency stream;
        // the merged report says so instead of silently pooling less.
        EXPECT_EQ(b.restoredCount, 2);
        EXPECT_TRUE(b.mergedReport().degraded);
    }

    // The middle point now succeeded and is a fresh full result.
    const runner::ReplicatedPoint& repaired = second[0].points[1];
    EXPECT_EQ(repaired.merged, 2);
    EXPECT_EQ(repaired.restoredCount, 0);
    EXPECT_FALSE(repaired.degraded());
    EXPECT_GT(repaired.pooled.count(), 0u);

    // The journal now records everything ok (last write wins).
    const runner::JournalIndex final_index =
        runner::JournalIndex::load(path);
    for (const auto& [key, entry] : final_index.entries)
        EXPECT_TRUE(entry.ok()) << key;
}

TEST(RunJournal, ResumeIgnoresEntriesWithMismatchedSeeds)
{
    FileJanitor janitor;
    const std::string path = janitor.track(tempPath("journal"));
    {
        runner::RunnerOptions options;
        options.replications = 1;
        options.baseSeed = 1;
        options.journalPath = path;
        runner::SweepRunner sweep_runner(options);
        sweep_runner.addSweep("grid", {1000.0}, thriftFactory());
        sweep_runner.run();
    }
    // Same grid shape, different base seed: nothing may be restored.
    std::atomic<int> built{0};
    runner::RunnerOptions options;
    options.replications = 1;
    options.baseSeed = 2;
    options.resumePath = path;
    runner::SweepRunner resumed(options);
    resumed.addSweep("grid", {1000.0},
                     [&built](double qps, std::uint64_t seed) {
                         built.fetch_add(1);
                         return makeThrift(qps, seed);
                     });
    resumed.run();
    EXPECT_EQ(built.load(), 1);
    EXPECT_EQ(resumed.restoredJobs(), 0);
}

// ---------------------------------------------------------------------
// Stall watchdog and budgets

/** Schedules an event that reschedules itself at the same sim time:
 *  events keep firing but the clock never advances. */
void
scheduleLivelock(Simulator& sim)
{
    sim.scheduleAfter(0, [&sim]() { scheduleLivelock(sim); },
                      "livelock");
}

TEST(Watchdog, StallWindowKillsZeroDelayLivelock)
{
    runner::RunnerOptions options;
    options.jobs = 1;
    options.watchdog.stallWindowSeconds = 0.2;
    options.watchdog.pollIntervalSeconds = 0.02;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("stall", {500.0},
                          [](double qps, std::uint64_t seed) {
                              auto simulation = makeThrift(qps, seed);
                              scheduleLivelock(simulation->sim());
                              return simulation;
                          });
    const std::vector<runner::ReplicatedCurve> curves =
        sweep_runner.run();
    const runner::ReplicationResult& rep =
        curves[0].points[0].replications[0];
    EXPECT_EQ(rep.failure, runner::FailureKind::Timeout);
    EXPECT_NE(rep.error.find("stall"), std::string::npos);
}

TEST(Watchdog, EventBudgetIsDeterministic)
{
    auto run_with_budget = [](std::uint64_t budget) {
        runner::RunnerOptions options;
        options.jobs = 1;
        options.watchdog.maxEventsPerReplication = budget;
        runner::SweepRunner sweep_runner(options);
        sweep_runner.addSweep("budget", {20000.0}, thriftFactory());
        return sweep_runner.run()[0].points[0].replications[0];
    };
    const runner::ReplicationResult a = run_with_budget(4000);
    const runner::ReplicationResult b = run_with_budget(4000);
    EXPECT_EQ(a.failure, runner::FailureKind::Timeout);
    EXPECT_NE(a.error.find("event-budget"), std::string::npos);
    // Same budget, same stream: the kill point is reproducible.
    EXPECT_EQ(a.error, b.error);
}

TEST(Watchdog, WallTimeoutKillsLongRun)
{
    runner::RunnerOptions options;
    options.jobs = 1;
    options.watchdog.wallTimeoutSeconds = 0.05;
    options.watchdog.pollIntervalSeconds = 0.01;
    runner::SweepRunner sweep_runner(options);
    // A long, high-load run that would take far more than 50 ms.
    sweep_runner.addSweep(
        "slow", {30000.0}, [](double qps, std::uint64_t seed) {
            models::ThriftEchoParams params = thriftParams(qps, seed);
            params.run.durationSeconds = 60.0;
            return Simulation::fromBundle(
                models::thriftEchoBundle(params));
        });
    const std::vector<runner::ReplicatedCurve> curves =
        sweep_runner.run();
    const runner::ReplicationResult& rep =
        curves[0].points[0].replications[0];
    EXPECT_EQ(rep.failure, runner::FailureKind::Timeout);
    EXPECT_NE(rep.error.find("wall-timeout"), std::string::npos);
}

TEST(Watchdog, UnsupervisedRunsAreUntouched)
{
    // All limits zero: no watchdog thread, no RunControl overhead
    // beyond the poll branch, results identical to the seed path.
    runner::RunnerOptions options;
    options.jobs = 1;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("plain", {2000.0}, thriftFactory());
    const std::vector<runner::ReplicatedCurve> curves =
        sweep_runner.run();
    const runner::ReplicationResult& rep =
        curves[0].points[0].replications[0];
    EXPECT_TRUE(rep.ok());
    EXPECT_GT(rep.report.completed, 0u);
}

TEST(RunControl, FirstAbortReasonWins)
{
    RunControl control;
    EXPECT_EQ(control.abortRequested(), AbortReason::None);
    control.requestAbort(AbortReason::Stall);
    control.requestAbort(AbortReason::WallTimeout);
    EXPECT_EQ(control.abortRequested(), AbortReason::Stall);
    control.publish(42, 1000);
    EXPECT_EQ(control.eventWatermark(), 42u);
    EXPECT_EQ(control.simTimeWatermark(), 1000);
}

// ---------------------------------------------------------------------
// Engine invariant auditor

class AuditModeGuard {
  public:
    AuditModeGuard() { audit::setAuditMode(true); }
    ~AuditModeGuard() { audit::setAuditMode(false); }
};

TEST(Auditor, CleanRunPassesInAuditMode)
{
    AuditModeGuard guard;
    auto simulation = makeThrift(2000.0, 3);
    const RunReport report = simulation->run();
    EXPECT_GT(report.completed, 0u);
    // Quiescent state after a clean drain: explicit re-audit agrees.
    const audit::AuditReport engine =
        simulation->sim().auditEngine();
    EXPECT_TRUE(engine.clean()) << engine.describe();
    const audit::AuditReport full =
        audit::auditSimulation(*simulation, /*at_drain=*/false);
    EXPECT_TRUE(full.clean()) << full.describe();
}

TEST(Auditor, FaultScenarioPassesConservationChecks)
{
    // Fault injection exercises the failure/crash/refusal paths of
    // the conservation ledger; the auditor must not false-positive
    // on a run where requests legitimately die mid-flight.
    AuditModeGuard guard;
    runner::RunnerOptions options;
    options.jobs = 1;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep(
        "faulty", {4000.0}, [](double qps, std::uint64_t seed) {
            ConfigBundle bundle =
                models::thriftEchoBundle(thriftParams(qps, seed));
            bundle.faults = json::parse(
                R"({"faults": [{"type": "crash",)"
                R"( "service": "thrift_echo",)"
                R"( "mtbf_s": 0.2, "mttr_s": 0.05}]})");
            return Simulation::fromBundle(bundle);
        });
    const std::vector<runner::ReplicatedCurve> curves =
        sweep_runner.run();
    const runner::ReplicationResult& rep =
        curves[0].points[0].replications[0];
    EXPECT_TRUE(rep.ok()) << rep.error;
    EXPECT_GT(rep.report.crashes, 0u);
}

TEST(Auditor, AbortedReplicationLeavesNoLeakedEvents)
{
    // Satellite 6: a replication killed mid-run (event budget) must
    // have released its pooled event storage before the harness
    // salvages siblings — the abort path runs the engine leak check
    // and would escalate to an invariant violation otherwise.
    AuditModeGuard guard;
    runner::RunnerOptions options;
    options.jobs = 2;
    options.replications = 2;
    options.watchdog.maxEventsPerReplication = 4000;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("aborted", {20000.0}, thriftFactory());
    const std::vector<runner::ReplicatedCurve> curves =
        sweep_runner.run();
    for (const runner::ReplicationResult& rep :
         curves[0].points[0].replications) {
        // Classified as a timeout, NOT escalated to invariant: the
        // post-failure engine audit found nothing leaked.
        EXPECT_EQ(rep.failure, runner::FailureKind::Timeout);
        EXPECT_EQ(rep.error.find("invariant"), std::string::npos);
    }
}

TEST(Auditor, MidRunExceptionReleasesPooledEventStorage)
{
    // A user callback that throws mid-event: FiredEvent's RAII must
    // release the slab slot during unwind, so the abort-path audit
    // stays clean and the failure keeps its original classification.
    runner::RunnerOptions options;
    options.jobs = 1;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep(
        "thrower", {1000.0}, [](double qps, std::uint64_t seed) {
            auto simulation = makeThrift(qps, seed);
            simulation->sim().scheduleAfter(
                secondsToSimTime(0.4),
                []() {
                    throw std::runtime_error("mid-run explosion");
                },
                "bomb");
            return simulation;
        });
    const std::vector<runner::ReplicatedCurve> curves =
        sweep_runner.run();
    const runner::ReplicationResult& rep =
        curves[0].points[0].replications[0];
    EXPECT_EQ(rep.failure, runner::FailureKind::InternalError)
        << rep.error;
    EXPECT_NE(rep.error.find("mid-run explosion"), std::string::npos)
        << rep.error;
    // No escalation: the engine audit in the abort path was clean.
    EXPECT_EQ(rep.error.find("invariant"), std::string::npos)
        << rep.error;
}

TEST(Auditor, ReportsDescribeAndRaise)
{
    audit::AuditReport clean;
    EXPECT_TRUE(clean.clean());
    EXPECT_NO_THROW(clean.raise("context"));

    audit::AuditReport dirty;
    dirty.violations.push_back("first problem");
    dirty.violations.push_back("second problem");
    EXPECT_FALSE(dirty.clean());
    EXPECT_NE(dirty.describe().find("first problem"),
              std::string::npos);
    try {
        dirty.raise("unit test");
        FAIL() << "raise() must throw";
    } catch (const EngineInvariantError& error) {
        EXPECT_NE(std::string(error.what()).find("unit test"),
                  std::string::npos);
    }
}

// ---------------------------------------------------------------------
// Crash recovery end to end: SIGKILL a checkpointing run, resume

#if defined(__unix__) || defined(__APPLE__)

/**
 * The real crash scenario, not a stand-in: a child process runs a
 * checkpointing simulation and SIGKILLs *itself* mid-flight (no
 * atexit, no unwinding, exactly what `kill -9` or the OOM killer
 * does).  The parent then recovers from the on-disk snapshots alone
 * and must reach a bit-identical final digest.
 */
TEST(CrashRecovery, SigkilledRunResumesFromSnapshotBitIdentically)
{
    namespace fs = std::filesystem;
    const std::string dir = "harness_sigkill_ckpt_dir";
    std::error_code ignored;
    fs::remove_all(dir, ignored);

    const auto factory = [] { return makeThrift(1500.0, 33); };

    const pid_t child = fork();
    ASSERT_GE(child, 0) << "fork failed";
    if (child == 0) {
        // Child: single-threaded simulation, checkpoints every 2000
        // events, killed without warning once past 6500 events (by
        // which point checkpoints at 2000/4000/6000 are on disk).
        auto simulation = factory();
        Simulation* raw = simulation.get();
        simulation->setCompletionListener([raw](const Job&, double) {
            if (raw->sim().executedEvents() > 6500)
                ::raise(SIGKILL);
        });
        snapshot::CheckpointOptions options;
        options.dir = dir;
        options.prefix = "job";
        options.everyEvents = 2000;
        snapshot::CheckpointManager manager(*simulation, options);
        manager.run();
        // Reached only when the run finished before the kill
        // threshold; the parent will fail on WIFSIGNALED then.
        std::_Exit(0);
    }

    int status = 0;
    ASSERT_EQ(::waitpid(child, &status, 0), child);
    ASSERT_TRUE(WIFSIGNALED(status))
        << "child was not killed - raise the workload";
    EXPECT_EQ(WTERMSIG(status), SIGKILL);

    // Recovery sees only the files the kill left behind.
    const auto found = snapshot::newestValidSnapshot(dir, "job");
    ASSERT_TRUE(found.has_value());
    EXPECT_GE(found->meta.executedEvents, 4000u);

    auto resumed = factory();
    snapshot::restoreFromSnapshot(*resumed, found->path);
    resumed->finishRun();

    auto reference = factory();
    reference->run();
    EXPECT_EQ(resumed->sim().traceDigest(),
              reference->sim().traceDigest());

    fs::remove_all(dir, ignored);
}

#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace uqsim
