/**
 * @file
 * Tests for the workload layer: load patterns, arrival processes,
 * and the open-loop client.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/applications.h"
#include "uqsim/stats/summary.h"
#include "uqsim/workload/arrival_process.h"
#include "uqsim/workload/client.h"
#include "uqsim/workload/load_pattern.h"

namespace uqsim {
namespace workload {
namespace {

// ----------------------------------------------------------- patterns

TEST(LoadPattern, Constant)
{
    ConstantLoad load(1234.0);
    EXPECT_DOUBLE_EQ(load.rateAt(0.0), 1234.0);
    EXPECT_DOUBLE_EQ(load.rateAt(99.0), 1234.0);
    EXPECT_THROW(ConstantLoad(-1.0), std::invalid_argument);
}

TEST(LoadPattern, Steps)
{
    StepLoad load({{0.0, 100.0}, {5.0, 200.0}, {10.0, 0.0}});
    EXPECT_DOUBLE_EQ(load.rateAt(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(load.rateAt(0.0), 100.0);
    EXPECT_DOUBLE_EQ(load.rateAt(4.999), 100.0);
    EXPECT_DOUBLE_EQ(load.rateAt(5.0), 200.0);
    EXPECT_DOUBLE_EQ(load.rateAt(12.0), 0.0);
    EXPECT_THROW(StepLoad({}), std::invalid_argument);
    EXPECT_THROW(StepLoad({{5.0, 1.0}, {0.0, 2.0}}),
                 std::invalid_argument);
    EXPECT_THROW(StepLoad({{0.0, -1.0}}), std::invalid_argument);
}

TEST(LoadPattern, DiurnalShape)
{
    DiurnalLoad load(1000.0, 500.0, 60.0);
    EXPECT_DOUBLE_EQ(load.rateAt(0.0), 1000.0);
    EXPECT_NEAR(load.rateAt(15.0), 1500.0, 1e-9);  // peak at T/4
    EXPECT_NEAR(load.rateAt(45.0), 500.0, 1e-9);   // trough at 3T/4
    EXPECT_NEAR(load.rateAt(60.0), 1000.0, 1e-6);  // periodic
}

TEST(LoadPattern, DiurnalClampedAtZero)
{
    DiurnalLoad load(100.0, 500.0, 60.0);
    EXPECT_DOUBLE_EQ(load.rateAt(45.0), 0.0);
}

TEST(LoadPattern, FromJson)
{
    EXPECT_DOUBLE_EQ(
        LoadPattern::fromJson(json::parse("2500"))->rateAt(0.0),
        2500.0);
    EXPECT_DOUBLE_EQ(LoadPattern::fromJson(json::parse(
                                               R"({"type": "constant",
                             "qps": 100})"))
                         ->rateAt(3.0),
                     100.0);
    auto steps = LoadPattern::fromJson(json::parse(
        R"({"type": "steps", "points": [[0, 10], [1, 20]]})"));
    EXPECT_DOUBLE_EQ(steps->rateAt(1.5), 20.0);
    auto diurnal = LoadPattern::fromJson(json::parse(
        R"({"type": "diurnal", "base_qps": 100, "amplitude_qps": 50,
            "period_s": 10})"));
    EXPECT_NEAR(diurnal->rateAt(2.5), 150.0, 1e-9);
    EXPECT_THROW(
        LoadPattern::fromJson(json::parse(R"({"type": "sawtooth"})")),
        json::JsonError);
}

// ------------------------------------------------------------ arrivals

TEST(ArrivalProcess, FactoryNames)
{
    EXPECT_EQ(ArrivalProcess::fromName("poisson")->describe(),
              "poisson");
    EXPECT_EQ(ArrivalProcess::fromName("deterministic")->describe(),
              "deterministic");
    EXPECT_EQ(ArrivalProcess::fromName("uniform")->describe(),
              "uniform");
    EXPECT_THROW(ArrivalProcess::fromName("bursty"),
                 std::invalid_argument);
}

TEST(ArrivalProcess, PoissonGapsHaveCorrectMeanAndCv)
{
    PoissonArrivals arrivals;
    random::Rng rng(5);
    stats::Summary summary;
    for (int i = 0; i < 200000; ++i)
        summary.add(arrivals.nextGap(1000.0, rng));
    EXPECT_NEAR(summary.mean(), 1e-3, 2e-5);
    EXPECT_NEAR(summary.stddev() / summary.mean(), 1.0, 0.02);
}

TEST(ArrivalProcess, DeterministicGapIsExact)
{
    DeterministicArrivals arrivals;
    random::Rng rng(1);
    EXPECT_DOUBLE_EQ(arrivals.nextGap(500.0, rng), 0.002);
}

TEST(ArrivalProcess, UniformMeanMatchesRate)
{
    UniformArrivals arrivals;
    random::Rng rng(9);
    stats::Summary summary;
    for (int i = 0; i < 100000; ++i)
        summary.add(arrivals.nextGap(1000.0, rng));
    EXPECT_NEAR(summary.mean(), 1e-3, 2e-5);
}

TEST(ArrivalProcess, ZeroRateThrows)
{
    random::Rng rng(1);
    EXPECT_THROW(PoissonArrivals().nextGap(0.0, rng),
                 std::invalid_argument);
    EXPECT_THROW(DeterministicArrivals().nextGap(-1.0, rng),
                 std::invalid_argument);
}

// -------------------------------------------------------------- client

TEST(ClientConfig, FromJson)
{
    const ClientConfig config = ClientConfig::fromJson(json::parse(R"({
        "front_service": "nginx",
        "connections": 64,
        "arrival": "poisson",
        "load": {"type": "constant", "qps": 5000},
        "request_bytes": {"type": "exponential", "mean": 128},
        "start_s": 0.5, "stop_s": 9.5})"));
    EXPECT_EQ(config.frontService, "nginx");
    EXPECT_EQ(config.connections, 64);
    EXPECT_DOUBLE_EQ(config.load->rateAt(1.0), 5000.0);
    EXPECT_NEAR(config.requestBytes->mean(), 128.0, 1e-9);
    EXPECT_DOUBLE_EQ(config.startTime, 0.5);
    EXPECT_DOUBLE_EQ(config.stopTime, 9.5);
}

TEST(Client, GeneratesAtTargetRate)
{
    models::ThriftEchoParams params;
    params.run.qps = 5000.0;
    params.run.warmupSeconds = 0.0;
    params.run.durationSeconds = 2.0;
    auto simulation =
        Simulation::fromBundle(models::thriftEchoBundle(params));
    simulation->run();
    ASSERT_EQ(simulation->clients().size(), 1u);
    // 2 seconds at 5 kQPS: ~10k requests (Poisson noise ~1%).
    EXPECT_NEAR(
        static_cast<double>(simulation->clients()[0]->generated()),
        10000.0, 400.0);
}

TEST(Client, OpenLoopIgnoresCompletionDelays)
{
    // Open-loop property: the generator keeps issuing at the target
    // rate even when the server is saturated.
    models::ThriftEchoParams params;
    params.run.qps = 200000.0;  // far beyond ~60k saturation
    params.run.warmupSeconds = 0.0;
    params.run.durationSeconds = 0.5;
    auto simulation =
        Simulation::fromBundle(models::thriftEchoBundle(params));
    const RunReport report = simulation->run();
    EXPECT_NEAR(
        static_cast<double>(simulation->clients()[0]->generated()),
        100000.0, 3000.0);
    // ...but completes only at the service capacity.
    EXPECT_LT(report.achievedQps, 80000.0);
}

TEST(Client, StartAndStopTimesRespected)
{
    models::ThriftEchoParams params;
    params.run.qps = 1000.0;
    params.run.warmupSeconds = 0.0;
    params.run.durationSeconds = 3.0;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    bundle.client.asObject()["start_s"] = 1.0;
    bundle.client.asObject()["stop_s"] = 2.0;
    auto simulation = Simulation::fromBundle(bundle);
    simulation->run();
    // Roughly 1 second of generation at 1 kQPS.
    EXPECT_NEAR(
        static_cast<double>(simulation->clients()[0]->generated()),
        1000.0, 150.0);
}

TEST(Client, DiurnalLoadModulatesThroughput)
{
    models::PowerTwoTierParams params;
    params.run.qps = 0.0;  // unused; diurnal pattern drives load
    params.run.warmupSeconds = 0.0;
    params.run.durationSeconds = 60.0;
    params.baseQps = 2000.0;
    params.amplitudeQps = 1500.0;
    params.periodSeconds = 60.0;
    params.nginxWorkers = 4;
    auto simulation =
        Simulation::fromBundle(models::powerTwoTierBundle(params));
    std::uint64_t first_quarter = 0, third_quarter = 0;
    simulation->setCompletionListener(
        [&](const Job& job, double) {
            const double t = simTimeToSeconds(job.created);
            if (t >= 7.5 && t < 22.5)
                ++first_quarter;  // around the peak (t = 15)
            else if (t >= 37.5 && t < 52.5)
                ++third_quarter;  // around the trough (t = 45)
        });
    simulation->run();
    // Peak (3.5 kQPS) vs trough (0.5 kQPS): ~7x more completions.
    EXPECT_GT(first_quarter, third_quarter * 4);
}

TEST(Client, RequiresFrontInstances)
{
    Simulator sim;
    hw::Cluster cluster(sim);
    Deployment deployment(sim, cluster);
    PathTree tree;
    PathVariant variant;
    PathNode node;
    node.id = 0;
    node.service = "ghost";
    variant.nodes = {node};
    tree.addVariant(variant);
    // No models registered: client construction must fail cleanly.
    ClientConfig config;
    config.frontService = "ghost";
    config.load = std::make_shared<ConstantLoad>(10.0);
    Dispatcher* dispatcher = nullptr;
    (void)dispatcher;
    EXPECT_THROW(
        {
            Dispatcher d(sim, cluster.network(), tree, deployment);
            Client client(sim, d, deployment, config);
        },
        std::exception);
}

}  // namespace
}  // namespace workload
}  // namespace uqsim
