/**
 * @file
 * Unit tests for the hardware model: DVFS, core sets, machines,
 * IRQ service, network, cluster config.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "uqsim/hw/cluster.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/random/distributions.h"

namespace uqsim {
namespace hw {
namespace {

// ----------------------------------------------------------------- DVFS

TEST(DvfsTable, PaperDefaultRange)
{
    const DvfsTable table = DvfsTable::paperDefault();
    EXPECT_EQ(table.stepCount(), 8u);
    EXPECT_DOUBLE_EQ(table.lowest(), 1.2);
    EXPECT_DOUBLE_EQ(table.nominal(), 2.6);
}

TEST(DvfsTable, Validation)
{
    EXPECT_THROW(DvfsTable({}), std::invalid_argument);
    EXPECT_THROW(DvfsTable({2.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(DvfsTable({0.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(DvfsTable({1.0}).frequencyAt(1), std::out_of_range);
}

TEST(DvfsTable, ClosestIndex)
{
    const DvfsTable table({1.2, 1.8, 2.6});
    EXPECT_EQ(table.closestIndex(1.2), 0u);
    EXPECT_EQ(table.closestIndex(1.4), 0u);
    EXPECT_EQ(table.closestIndex(1.7), 1u);
    EXPECT_EQ(table.closestIndex(3.0), 2u);
}

TEST(DvfsDomain, StartsAtNominal)
{
    DvfsDomain domain(DvfsTable::paperDefault());
    EXPECT_TRUE(domain.atNominal());
    EXPECT_DOUBLE_EQ(domain.frequency(), 2.6);
    EXPECT_DOUBLE_EQ(domain.slowdown(), 1.0);
}

TEST(DvfsDomain, SteppingAndSlowdown)
{
    DvfsDomain domain(DvfsTable({1.3, 2.6}));
    EXPECT_TRUE(domain.stepDown());
    EXPECT_DOUBLE_EQ(domain.frequency(), 1.3);
    EXPECT_DOUBLE_EQ(domain.slowdown(), 2.0);
    EXPECT_TRUE(domain.atLowest());
    EXPECT_FALSE(domain.stepDown());
    EXPECT_TRUE(domain.stepUp());
    EXPECT_FALSE(domain.stepUp());
}

TEST(DvfsDomain, ObserversFireOnChange)
{
    DvfsDomain domain(DvfsTable::paperDefault());
    int changes = 0;
    domain.onChange([&](const DvfsDomain&) { ++changes; });
    domain.stepDown();
    domain.setFrequency(1.2);
    domain.setFrequency(1.2);  // no-op: already closest to 1.2
    EXPECT_EQ(changes, 2);
}

// -------------------------------------------------------------- CoreSet

TEST(CoreSet, AcquireReleaseAccounting)
{
    CoreSet cores(2, "test");
    EXPECT_TRUE(cores.tryAcquire(0));
    EXPECT_TRUE(cores.tryAcquire(0));
    EXPECT_FALSE(cores.tryAcquire(0));
    EXPECT_EQ(cores.inUse(), 2);
    cores.release(kSecond);
    EXPECT_EQ(cores.available(), 1);
    EXPECT_THROW(
        [&] {
            cores.release(kSecond);
            cores.release(kSecond);
        }(),
        std::logic_error);
}

TEST(CoreSet, UtilizationIntegral)
{
    CoreSet cores(2, "test");
    ASSERT_TRUE(cores.tryAcquire(0));
    cores.release(kSecond);  // 1 core busy for 1s of 2 core-seconds
    EXPECT_NEAR(cores.utilization(kSecond), 0.5, 1e-9);
    EXPECT_NEAR(cores.busyCoreSeconds(kSecond), 1.0, 1e-9);
    // With no further activity utilization decays.
    EXPECT_NEAR(cores.utilization(2 * kSecond), 0.25, 1e-9);
}

TEST(CoreSet, InvalidCapacityThrows)
{
    EXPECT_THROW(CoreSet(0), std::invalid_argument);
}

// --------------------------------------------------------------- Machine

TEST(Machine, AllocationBookkeeping)
{
    Simulator sim;
    MachineConfig config;
    config.name = "m0";
    config.cores = 8;
    config.irqCores = 2;
    Machine machine(sim, config);
    EXPECT_EQ(machine.allocatedCores(), 2);  // irq cores
    CoreSet& a = machine.allocateCores(4, "svc");
    EXPECT_EQ(a.capacity(), 4);
    EXPECT_EQ(machine.freeCores(), 2);
    EXPECT_THROW(machine.allocateCores(3, "too-much"),
                 std::runtime_error);
    machine.allocateCores(2, "rest");
    EXPECT_EQ(machine.freeCores(), 0);
}

TEST(Machine, IrqOptional)
{
    Simulator sim;
    MachineConfig config;
    config.cores = 4;
    config.irqCores = 0;
    Machine machine(sim, config);
    EXPECT_EQ(machine.irq(), nullptr);
}

TEST(Machine, IrqCoresCannotExceedTotal)
{
    Simulator sim;
    MachineConfig config;
    config.cores = 2;
    config.irqCores = 4;
    EXPECT_THROW(Machine(sim, config), std::invalid_argument);
}

TEST(Machine, ExtraDvfsDomains)
{
    Simulator sim;
    MachineConfig config;
    Machine machine(sim, config);
    DvfsDomain& own = machine.makeDvfsDomain("tier");
    own.stepDown();
    EXPECT_LT(own.frequency(), machine.dvfs().frequency());
}

// ------------------------------------------------------------ IrqService

TEST(IrqService, ProcessesPacketsInOrder)
{
    Simulator sim;
    IrqService irq(sim, "irq", 1,
                   std::make_shared<random::DeterministicDistribution>(
                       1e-6),
                   0.0, nullptr);
    std::vector<int> order;
    irq.process(100, [&] { order.push_back(1); });
    irq.process(100, [&] { order.push_back(2); });
    sim.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(irq.processedPackets(), 2u);
    EXPECT_EQ(sim.now(), 2 * kMicrosecond);
}

TEST(IrqService, ParallelCores)
{
    Simulator sim;
    IrqService irq(sim, "irq", 2,
                   std::make_shared<random::DeterministicDistribution>(
                       1e-6),
                   0.0, nullptr);
    int done = 0;
    irq.process(0, [&] { ++done; });
    irq.process(0, [&] { ++done; });
    sim.run();
    EXPECT_EQ(done, 2);
    EXPECT_EQ(sim.now(), kMicrosecond);  // processed in parallel
}

TEST(IrqService, PerByteCost)
{
    Simulator sim;
    IrqService irq(sim, "irq", 1,
                   std::make_shared<random::DeterministicDistribution>(
                       1e-6),
                   1e-9, nullptr);
    irq.process(1000, [] {});
    sim.run();
    EXPECT_EQ(sim.now(), 2 * kMicrosecond);  // 1us base + 1000 * 1ns
}

TEST(IrqService, DvfsScalesServiceTime)
{
    Simulator sim;
    DvfsDomain domain(DvfsTable({1.3, 2.6}));
    domain.stepDown();  // 2x slowdown
    IrqService irq(sim, "irq", 1,
                   std::make_shared<random::DeterministicDistribution>(
                       1e-6),
                   0.0, &domain);
    irq.process(0, [] {});
    sim.run();
    EXPECT_EQ(sim.now(), 2 * kMicrosecond);
}

// --------------------------------------------------------------- Network

class NetworkTest : public ::testing::Test {
  protected:
    NetworkTest()
    {
        MachineConfig config;
        config.cores = 4;
        config.irqCores = 1;
        config.irqPerPacket = 1e-6;
        config.name = "a";
        a_ = std::make_unique<Machine>(sim_, config);
        config.name = "b";
        b_ = std::make_unique<Machine>(sim_, config);
    }

    Simulator sim_;
    NetworkConfig net_{20e-6, 5e-6};
    std::unique_ptr<Machine> a_;
    std::unique_ptr<Machine> b_;
};

TEST_F(NetworkTest, CrossMachinePaysIrqTwicePlusWire)
{
    Network network(sim_, net_);
    SimTime done = -1;
    network.transfer(a_.get(), b_.get(), 0, [&] { done = sim_.now(); });
    sim_.run();
    // irq(exp mean 1us is deterministic? no: exponential). Just check
    // it is at least the wire latency and both irq services ran.
    EXPECT_GE(done, secondsToSimTime(20e-6));
    EXPECT_EQ(a_->irq()->processedPackets(), 1u);
    EXPECT_EQ(b_->irq()->processedPackets(), 1u);
    EXPECT_EQ(network.transferCount(), 1u);
}

TEST_F(NetworkTest, LoopbackSkipsWire)
{
    Network network(sim_, net_);
    SimTime done = -1;
    network.transfer(a_.get(), a_.get(), 0, [&] { done = sim_.now(); });
    sim_.run();
    EXPECT_GE(done, secondsToSimTime(5e-6));
    EXPECT_LT(done, secondsToSimTime(20e-6));
    EXPECT_EQ(a_->irq()->processedPackets(), 1u);
}

TEST_F(NetworkTest, ClientLegPaysWireOnly)
{
    Network network(sim_, net_);
    SimTime done = -1;
    network.transfer(nullptr, nullptr, 0, [&] { done = sim_.now(); });
    sim_.run();
    EXPECT_EQ(done, secondsToSimTime(20e-6));
}

// --------------------------------------------------------------- Cluster

TEST(Cluster, FromJsonBuildsMachines)
{
    Simulator sim;
    const auto doc = json::parse(R"({
        "wire_latency_us": 15,
        "loopback_latency_us": 3,
        "machines": [
            {"name": "s0", "cores": 20, "irq_cores": 4,
             "dvfs_ghz": [1.2, 2.6], "irq_per_packet_us": 2.0},
            {"name": "s1", "cores": 8}
        ]})");
    auto cluster = hw::Cluster::fromJson(sim, doc);
    EXPECT_EQ(cluster->machineCount(), 2u);
    EXPECT_TRUE(cluster->hasMachine("s0"));
    EXPECT_FALSE(cluster->hasMachine("s9"));
    Machine& s0 = cluster->machine("s0");
    EXPECT_EQ(s0.totalCores(), 20);
    EXPECT_NE(s0.irq(), nullptr);
    EXPECT_EQ(s0.dvfs().table().stepCount(), 2u);
    EXPECT_EQ(cluster->machine("s1").irq(), nullptr);
    EXPECT_THROW(cluster->machine("nope"), std::out_of_range);
}

TEST(Cluster, DuplicateMachineNameThrows)
{
    Simulator sim;
    Cluster cluster(sim);
    MachineConfig config;
    config.name = "dup";
    cluster.addMachine(config);
    EXPECT_THROW(cluster.addMachine(config), std::invalid_argument);
}

}  // namespace
}  // namespace hw
}  // namespace uqsim
