/**
 * @file
 * Tests for the BigHouse-style baseline simulator, including its own
 * M/M/1 validation and the structural property behind Fig. 13: a
 * single-queue model that charges the full epoll cost to every
 * request saturates earlier than the batching-aware µqSim model.
 */

#include <gtest/gtest.h>

#include <memory>

#include "uqsim/bighouse/bighouse.h"
#include "uqsim/random/distributions.h"

namespace uqsim {
namespace bighouse {
namespace {

BigHouseOptions
quick(double duration = 20.0)
{
    BigHouseOptions options;
    options.seed = 11;
    options.warmupSeconds = duration * 0.1;
    options.durationSeconds = duration;
    return options;
}

TEST(BigHouse, Mm1MeanSojournMatchesTheory)
{
    BigHouseSimulation sim(quick(60.0));
    sim.addStation({"station", 1,
                    std::make_shared<random::ExponentialDistribution>(
                        1e-3)});
    const RunReport report = sim.run(500.0);
    // W = 1/(mu - lambda) = 1/500 s = 2 ms.
    EXPECT_NEAR(report.endToEnd.meanMs, 2.0, 0.15);
    EXPECT_NEAR(report.achievedQps, 500.0, 20.0);
}

TEST(BigHouse, MultiServerStation)
{
    BigHouseSimulation sim(quick(60.0));
    sim.addStation({"station", 4,
                    std::make_shared<random::ExponentialDistribution>(
                        1e-3)});
    // rho = 0.5 on 4 servers: mean sojourn close to service time.
    const RunReport report = sim.run(2000.0);
    EXPECT_NEAR(report.endToEnd.meanMs, 1.09, 0.12);  // M/M/4 W
}

TEST(BigHouse, ChainedStationsAddLatencies)
{
    BigHouseSimulation sim(quick(30.0));
    sim.addStation({"a", 1,
                    std::make_shared<random::DeterministicDistribution>(
                        1e-3)});
    sim.addStation({"b", 1,
                    std::make_shared<random::DeterministicDistribution>(
                        2e-3)});
    // At 10 QPS both stations are nearly idle: mean ~= 3 ms total
    // service plus negligible M/D/1 queueing.
    const RunReport report = sim.run(10.0);
    EXPECT_NEAR(report.endToEnd.meanMs, 3.0, 0.1);
}

TEST(BigHouse, SaturationCapsThroughput)
{
    BigHouseSimulation sim(quick(10.0));
    sim.addStation({"station", 1,
                    std::make_shared<random::DeterministicDistribution>(
                        1e-3)});  // capacity 1000 QPS
    const RunReport report = sim.run(2000.0);
    // Measured completions only count requests issued after warm-up,
    // which queue behind the warm-up backlog, so achieved throughput
    // sits below the 1000 QPS service capacity but far under the
    // 2000 QPS offered load.
    EXPECT_GT(report.achievedQps, 600.0);
    EXPECT_LT(report.achievedQps, 1050.0);
}

TEST(BigHouse, ApiMisuseThrows)
{
    BigHouseSimulation sim(quick());
    EXPECT_THROW(sim.run(100.0), std::logic_error);  // no stations
    sim.addStation({"s", 1,
                    std::make_shared<random::DeterministicDistribution>(
                        1e-3)});
    EXPECT_THROW(sim.addStation({"bad", 0, nullptr}),
                 std::invalid_argument);
    EXPECT_THROW(
        sim.addStation(
            {"bad", 1, nullptr}),
        std::invalid_argument);
    EXPECT_THROW(sim.run(0.0), std::invalid_argument);
    sim.run(100.0);
    EXPECT_THROW(sim.run(100.0), std::logic_error);
}

TEST(BigHouse, SingleQueueModelOverchargesBatchedStages)
{
    // The structural effect behind Fig. 13, isolated: a BigHouse
    // station must charge the full epoll cost per request (no
    // amortization), so its capacity is 1/(epoll + proc); a batching
    // event loop amortizes epoll across B requests, giving capacity
    // 1/(epoll/B + proc).  Check the baseline's saturation matches
    // the former.
    const double epoll = 5e-6, proc = 10e-6;
    BigHouseSimulation sim(quick(10.0));
    sim.addStation({"svc", 1,
                    std::make_shared<random::DeterministicDistribution>(
                        epoll + proc)});
    const RunReport report = sim.run(200000.0);
    // Completion rate is bounded by 1/(epoll + proc) ~ 66.7k QPS
    // (minus the warm-up backlog) — far below the ~94k QPS an ideal
    // 8-deep batching loop would reach.
    EXPECT_GT(report.achievedQps, 35000.0);
    EXPECT_LT(report.achievedQps, 1.0 / (epoll + proc) + 2000.0);
    EXPECT_LT(report.achievedQps, 1.0 / (epoll / 8.0 + proc));
}

}  // namespace
}  // namespace bighouse
}  // namespace uqsim
