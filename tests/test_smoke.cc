/**
 * @file
 * End-to-end smoke tests: every application bundle builds, runs at
 * low load, and produces sane statistics.
 */

#include <gtest/gtest.h>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/models/applications.h"

namespace uqsim {
namespace {

models::RunParams
quickRun(double qps)
{
    models::RunParams run;
    run.qps = qps;
    run.warmupSeconds = 0.3;
    run.durationSeconds = 1.3;
    return run;
}

TEST(Smoke, TwoTierLowLoad)
{
    models::TwoTierParams params;
    params.run = quickRun(2000.0);
    auto simulation =
        Simulation::fromBundle(models::twoTierBundle(params));
    const RunReport report = simulation->run();
    EXPECT_GT(report.completed, 1000u);
    // Open-loop, far from saturation: achieved tracks offered.
    EXPECT_NEAR(report.achievedQps, 2000.0, 200.0);
    EXPECT_GT(report.endToEnd.meanMs, 0.0);
    EXPECT_LT(report.endToEnd.p99Ms, 10.0);
    EXPECT_EQ(simulation->dispatcher().leakedBlocks(), 0u);
    EXPECT_EQ(simulation->dispatcher().leakedHops(), 0u);
}

TEST(Smoke, ThreeTierLowLoad)
{
    models::ThreeTierParams params;
    params.run = quickRun(1000.0);
    auto simulation =
        Simulation::fromBundle(models::threeTierBundle(params));
    const RunReport report = simulation->run();
    EXPECT_GT(report.completed, 500u);
    EXPECT_NEAR(report.achievedQps, 1000.0, 150.0);
    // Misses pay the ~4 ms disk access, so p99 >> p50.
    EXPECT_GT(report.endToEnd.p99Ms, report.endToEnd.p50Ms);
}

TEST(Smoke, LoadBalancerLowLoad)
{
    models::LoadBalancerParams params;
    params.run = quickRun(5000.0);
    params.webServers = 4;
    auto simulation =
        Simulation::fromBundle(models::loadBalancerBundle(params));
    const RunReport report = simulation->run();
    EXPECT_NEAR(report.achievedQps, 5000.0, 500.0);
    EXPECT_EQ(simulation->dispatcher().leakedHops(), 0u);
}

TEST(Smoke, FanoutLowLoad)
{
    models::FanoutParams params;
    params.run = quickRun(2000.0);
    params.fanout = 4;
    auto simulation =
        Simulation::fromBundle(models::fanoutBundle(params));
    const RunReport report = simulation->run();
    EXPECT_NEAR(report.achievedQps, 2000.0, 250.0);
    EXPECT_EQ(simulation->dispatcher().leakedHops(), 0u);
}

TEST(Smoke, ThriftEchoLowLoad)
{
    models::ThriftEchoParams params;
    params.run = quickRun(10000.0);
    auto simulation =
        Simulation::fromBundle(models::thriftEchoBundle(params));
    const RunReport report = simulation->run();
    EXPECT_NEAR(report.achievedQps, 10000.0, 800.0);
    // Low-load latency below 100 us (paper Fig. 12a).
    EXPECT_LT(report.endToEnd.p50Ms, 0.2);
}

TEST(Smoke, SocialNetworkLowLoad)
{
    models::SocialNetworkParams params;
    params.run = quickRun(1000.0);
    auto simulation =
        Simulation::fromBundle(models::socialNetworkBundle(params));
    const RunReport report = simulation->run();
    EXPECT_NEAR(report.achievedQps, 1000.0, 150.0);
    EXPECT_EQ(simulation->dispatcher().leakedHops(), 0u);
}

TEST(Smoke, TailAtScaleSmallCluster)
{
    models::TailAtScaleParams params;
    params.run = quickRun(50.0);
    params.run.durationSeconds = 2.3;
    params.clusterSize = 10;
    params.slowFraction = 0.0;
    auto simulation =
        Simulation::fromBundle(models::tailAtScaleBundle(params));
    const RunReport report = simulation->run();
    EXPECT_GT(report.completed, 50u);
    // End-to-end is the max over 10 exponential leaves: well above
    // the 1 ms mean.
    EXPECT_GT(report.endToEnd.p50Ms, 1.0);
}

}  // namespace
}  // namespace uqsim
