/**
 * @file
 * Analytical validation: a single-stage service driven by Poisson
 * arrivals and exponential service, simulated on the DES engine,
 * must match the M/M/1 and M/M/k closed forms in
 * uqsim/stats/queueing_theory (the paper's core claim that
 * single-concerned microservices conform to queueing theory).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <deque>

#include "uqsim/core/engine/simulator.h"
#include "uqsim/stats/percentile_recorder.h"
#include "uqsim/stats/queueing_theory.h"
#include "uqsim/stats/summary.h"

namespace uqsim {
namespace {

/**
 * Minimal M/M/k station on the event engine: Poisson arrivals at
 * @p lambda, @p k servers with exponential service at rate @p mu,
 * FIFO queue.  Tracks sojourn times and the time-averaged number of
 * jobs in the system.
 */
class MmkStation {
  public:
    MmkStation(double lambda, double mu, int k, std::uint64_t seed)
        : sim_(seed), lambda_(lambda), mu_(mu), servers_(k),
          arrivals_(sim_.makeStream("arrivals")),
          services_(sim_.makeStream("services"))
    {
    }

    void
    run(double horizon_seconds, double warmup_seconds)
    {
        warmup_ = warmup_seconds;
        horizon_ = horizon_seconds;
        scheduleArrival();
        sim_.run(secondsToSimTime(horizon_seconds));
        // Close the time-average integral at the horizon.
        accumulateArea();
    }

    const stats::PercentileRecorder& sojourns() const
    {
        return sojourns_;
    }

    /** Time-averaged jobs in system over the measured window. */
    double
    meanJobs() const
    {
        const double window = horizon_ - warmup_;
        return window > 0.0 ? area_ / window : 0.0;
    }

  private:
    void
    scheduleArrival()
    {
        const double gap =
            -std::log(arrivals_.nextDoubleOpenLeft()) / lambda_;
        sim_.scheduleAfter(secondsToSimTime(gap),
                           [this]() { onArrival(); }, "arrival");
    }

    void
    onArrival()
    {
        scheduleArrival();
        accumulateArea();
        ++inSystem_;
        const SimTime now = sim_.now();
        if (busy_ < servers_) {
            ++busy_;
            startService(now);
        } else {
            waiting_.push_back(now);
        }
    }

    void
    startService(SimTime arrived)
    {
        const double service =
            -std::log(services_.nextDoubleOpenLeft()) / mu_;
        sim_.scheduleAfter(
            secondsToSimTime(service),
            [this, arrived]() { onDeparture(arrived); }, "departure");
    }

    void
    onDeparture(SimTime arrived)
    {
        accumulateArea();
        --inSystem_;
        if (simTimeToSeconds(arrived) >= warmup_) {
            sojourns_.add(simTimeToSeconds(sim_.now() - arrived));
        }
        if (!waiting_.empty()) {
            const SimTime next = waiting_.front();
            waiting_.pop_front();
            startService(next);
        } else {
            --busy_;
        }
    }

    void
    accumulateArea()
    {
        const double now =
            std::min(simTimeToSeconds(sim_.now()), horizon_);
        const double from = std::max(lastChange_, warmup_);
        if (now > from)
            area_ += inSystem_ * (now - from);
        lastChange_ = now;
    }

    Simulator sim_;
    double lambda_;
    double mu_;
    int servers_;
    random::RngStream arrivals_;
    random::RngStream services_;
    std::deque<SimTime> waiting_;
    int inSystem_ = 0;
    int busy_ = 0;
    double warmup_ = 0.0;
    double horizon_ = 0.0;
    double lastChange_ = 0.0;
    double area_ = 0.0;
    stats::PercentileRecorder sojourns_;
};

// Relative tolerance for ~200k-sample estimates of means and central
// quantiles; generous enough to be seed-robust, tight enough to
// catch a wrong formula (errors there are typically 2x, not 5%).
constexpr double kTol = 0.05;

TEST(AnalyticalValidation, Mm1MeanSojournMatchesClosedForm)
{
    const double lambda = 800.0, mu = 1000.0;  // rho = 0.8
    MmkStation station(lambda, mu, 1, 2024);
    station.run(300.0, 5.0);

    ASSERT_GT(station.sojourns().count(), 100000u);
    const double expected = stats::mmkMeanSojourn(lambda, mu, 1);
    EXPECT_NEAR(station.sojourns().mean(), expected,
                kTol * expected);
}

TEST(AnalyticalValidation, Mm1MeanJobsMatchesClosedForm)
{
    const double lambda = 700.0, mu = 1000.0;  // rho = 0.7, L = 7/3
    MmkStation station(lambda, mu, 1, 99);
    station.run(300.0, 5.0);

    const double expected = stats::mm1MeanJobs(lambda, mu);
    EXPECT_NEAR(station.meanJobs(), expected, kTol * expected);
}

TEST(AnalyticalValidation, Mm1SojournQuantilesAreExponential)
{
    const double lambda = 600.0, mu = 1000.0;
    MmkStation station(lambda, mu, 1, 7);
    station.run(400.0, 5.0);

    // FIFO M/M/1 sojourn is exponential with rate mu - lambda; the
    // p50 and p90 closed forms must match the simulated quantiles.
    for (double p : {0.5, 0.9}) {
        const double expected =
            stats::mm1SojournQuantile(lambda, mu, p);
        EXPECT_NEAR(station.sojourns().percentile(p * 100.0),
                    expected, kTol * expected)
            << "quantile p=" << p;
    }
}

TEST(AnalyticalValidation, MmkMeanSojournMatchesErlangC)
{
    const double lambda = 960.0, mu = 300.0;  // k=4, rho = 0.8
    const int k = 4;
    MmkStation station(lambda, mu, k, 31337);
    station.run(250.0, 5.0);

    const double expected = stats::mmkMeanSojourn(lambda, mu, k);
    EXPECT_NEAR(station.sojourns().mean(), expected,
                kTol * expected);
}

TEST(AnalyticalValidation, MmkMeanWaitMatchesErlangC)
{
    const double lambda = 1350.0, mu = 500.0;  // k=3, rho = 0.9
    const int k = 3;
    MmkStation station(lambda, mu, k, 5);
    station.run(400.0, 5.0);

    // Wait = sojourn - service; service mean is 1/mu exactly in
    // expectation, so compare mean sojourn against wait + 1/mu.
    const double expected =
        stats::mmkMeanWait(lambda, mu, k) + 1.0 / mu;
    EXPECT_NEAR(station.sojourns().mean(), expected,
                kTol * expected);
}

TEST(AnalyticalValidation, HigherUtilizationMeansLongerQueues)
{
    // Sanity ordering across utilizations with one seed: the
    // simulated station must reproduce the convex blow-up of M/M/1.
    double previous = 0.0;
    for (double lambda : {300.0, 600.0, 900.0}) {
        MmkStation station(lambda, 1000.0, 1, 11);
        station.run(120.0, 2.0);
        EXPECT_GT(station.sojourns().mean(), previous);
        previous = station.sojourns().mean();
    }
}

}  // namespace
}  // namespace uqsim
