/**
 * @file
 * Tests for the checkpoint/restore subsystem: the
 * `uqsim-snapshot-v1` binary format (strict validation: truncation,
 * bit flips, version/section gating, field-level mismatches), the
 * segmented-run determinism contract (checkpoint placement is
 * invisible to the event stream), replay-validated restore under
 * faults / FlowModel routing / disk I/O, crash recovery
 * (newestValidSnapshot, retention, abort-then-checkpoint ordering),
 * and warm-state forking.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "uqsim/core/engine/run_control.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/applications.h"
#include "uqsim/models/stage_presets.h"
#include "uqsim/runner/sweep_runner.h"
#include "uqsim/snapshot/checkpoint.h"
#include "uqsim/snapshot/snapshot.h"

namespace uqsim {
namespace {

namespace fs = std::filesystem;

using json::JsonArray;
using json::JsonValue;
using snapshot::SectionId;
using snapshot::SnapshotFormatError;
using snapshot::SnapshotReader;
using snapshot::SnapshotStateError;
using snapshot::SnapshotWriter;

/** Unique-ish temp dir per test (ctest runs tests in parallel). */
std::string
tempDir(const std::string& stem)
{
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    return "snapshot_" + std::string(info->name()) + "_" + stem;
}

struct DirJanitor {
    std::vector<std::string> paths;
    ~DirJanitor()
    {
        for (const std::string& path : paths) {
            std::error_code ignored;
            fs::remove_all(path, ignored);
        }
    }
    const std::string&
    track(const std::string& path)
    {
        paths.push_back(path);
        return paths.back();
    }
};

models::TwoTierParams
twoTierParams(double qps, std::uint64_t seed)
{
    models::TwoTierParams params;
    params.run.qps = qps;
    params.run.seed = seed;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 0.8;
    return params;
}

std::unique_ptr<Simulation>
makeTwoTier(double qps, std::uint64_t seed)
{
    return Simulation::fromBundle(
        models::twoTierBundle(twoTierParams(qps, seed)));
}

/** Single-service bundle with a scripted crash *and* a network
 *  degradation window, for mid-fault-window checkpoints. */
ConfigBundle
faultyBundle(std::uint64_t seed)
{
    ConfigBundle bundle;
    bundle.options.seed = seed;
    bundle.options.warmupSeconds = 0.1;
    bundle.options.durationSeconds = 1.0;
    bundle.machines = json::parse(
        R"({"wire_latency_us": 5.0, "loopback_latency_us": 1.0,)"
        R"( "machines": [{"name": "front", "cores": 4,)"
        R"( "irq_cores": 0}]})");
    JsonValue svc = JsonValue::makeObject();
    svc.asObject()["service_name"] = std::string("svc");
    svc.asObject()["execution_model"] = std::string("simple");
    JsonArray stages;
    stages.push_back(
        models::processingStage(0, "proc", models::expUs(1000.0)));
    svc.asObject()["stages"] = JsonValue(std::move(stages));
    JsonArray paths;
    paths.push_back(models::pathJson(0, "serve", {0}));
    svc.asObject()["paths"] = JsonValue(std::move(paths));
    bundle.services.push_back(std::move(svc));
    bundle.graph = json::parse(
        R"({"services": [{"service": "svc", "instances":)"
        R"( [{"machine": "front", "threads": 2}]}]})");
    bundle.paths = json::parse(
        R"({"paths": [{"probability": 1.0, "nodes": [{"node_id": 0,)"
        R"( "service": "svc", "path": "serve", "children": []}]}]})");
    bundle.client = json::parse(
        R"({"front_service": "svc", "connections": 64,)"
        R"( "arrival": "poisson", "load": {"type": "constant",)"
        R"( "qps": 3000.0}, "request_bytes": {"type":)"
        R"( "deterministic", "value": 128.0}})");
    bundle.faults = json::parse(
        R"({"faults": [{"type": "crash", "instance": "svc.0",)"
        R"( "at_s": 0.4, "recover_s": 0.6},)"
        R"( {"type": "network", "start_s": 0.3, "end_s": 0.7,)"
        R"( "extra_latency_us": 200.0, "loss_prob": 0.02}]})");
    return bundle;
}

std::uint64_t
straightThroughDigest(const std::function<std::unique_ptr<Simulation>()>&
                          factory)
{
    auto simulation = factory();
    simulation->run();
    return simulation->sim().traceDigest();
}

/** A small but representative snapshot image for format tests. */
std::vector<std::uint8_t>
sampleImage()
{
    SnapshotWriter writer;
    snapshot::SnapshotMeta meta;
    meta.configDigest = 0x1111111111111111ULL;
    meta.masterSeed = 7;
    meta.simTime = 1234567;
    meta.executedEvents = 89;
    meta.traceDigest = 0x2222222222222222ULL;
    writer.setMeta(meta);
    writer.beginSection(SectionId::Engine);
    writer.putU64(42);
    writer.putU32(17);
    writer.putI64(-5);
    writer.putF64(3.25);
    writer.putBool(true);
    writer.putString("hello");
    writer.putU8(9);
    writer.endSection();
    writer.beginSection(SectionId::Stats);
    writer.putU64(99);
    writer.endSection();
    return writer.assemble();
}

// ---------------------------------------------------------------------
// Format: round trip and strict validation

TEST(SnapshotFormat, RoundTripsMetaScalarsAndStrings)
{
    SnapshotReader reader = SnapshotReader::fromBytes(sampleImage());

    EXPECT_EQ(reader.meta().configDigest, 0x1111111111111111ULL);
    EXPECT_EQ(reader.meta().masterSeed, 7u);
    EXPECT_EQ(reader.meta().simTime, 1234567);
    EXPECT_EQ(reader.meta().executedEvents, 89u);
    EXPECT_EQ(reader.meta().traceDigest, 0x2222222222222222ULL);

    ASSERT_EQ(reader.sections().size(), 2u);
    EXPECT_EQ(reader.sections()[0], SectionId::Engine);
    EXPECT_EQ(reader.sections()[1], SectionId::Stats);
    EXPECT_TRUE(reader.hasSection(SectionId::Engine));
    EXPECT_FALSE(reader.hasSection(SectionId::Disks));

    reader.openSection(SectionId::Engine);
    EXPECT_EQ(reader.getU64("a"), 42u);
    EXPECT_EQ(reader.getU32("b"), 17u);
    EXPECT_EQ(reader.getI64("c"), -5);
    EXPECT_EQ(reader.getF64("d"), 3.25);
    EXPECT_TRUE(reader.getBool("e"));
    EXPECT_EQ(reader.getString("f"), "hello");
    EXPECT_EQ(reader.getU8("g"), 9u);
    reader.closeSection();

    reader.openSection(SectionId::Stats);
    EXPECT_NO_THROW(reader.requireU64("x", 99));
    reader.closeSection();
}

TEST(SnapshotFormat, FileRoundTripIsAtomicAndByteIdentical)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("d"));
    fs::create_directories(dir);
    const std::string path = dir + "/sample.uqsnap";

    SnapshotWriter writer;
    writer.beginSection(SectionId::Engine);
    writer.putU64(1);
    writer.endSection();
    writer.writeFile(path);

    // The atomic rename must not leave the temporary behind.
    EXPECT_FALSE(fs::exists(path + ".tmp"));

    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> on_disk(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    EXPECT_EQ(on_disk, writer.assemble());

    SnapshotReader reader = SnapshotReader::fromFile(path);
    reader.openSection(SectionId::Engine);
    EXPECT_EQ(reader.getU64("v"), 1u);
    reader.closeSection();
}

TEST(SnapshotFormat, RequireMismatchNamesSectionFieldAndBothValues)
{
    SnapshotReader reader = SnapshotReader::fromBytes(sampleImage());
    reader.openSection(SectionId::Engine);
    try {
        reader.requireU64("answer", 43);
        FAIL() << "mismatch not detected";
    } catch (const SnapshotStateError& error) {
        const std::string what = error.what();
        EXPECT_NE(what.find("ENGINE"), std::string::npos) << what;
        EXPECT_NE(what.find("answer"), std::string::npos) << what;
        EXPECT_NE(what.find("42"), std::string::npos) << what;
        EXPECT_NE(what.find("43"), std::string::npos) << what;
    }
}

TEST(SnapshotFormat, TruncationAtAnyPointIsRejected)
{
    const std::vector<std::uint8_t> image = sampleImage();
    for (std::size_t size : {std::size_t(0), std::size_t(8),
                             image.size() / 2, image.size() - 1,
                             image.size() - 8}) {
        std::vector<std::uint8_t> cut(image.begin(),
                                      image.begin() + size);
        EXPECT_THROW(SnapshotReader::fromBytes(std::move(cut)),
                     SnapshotFormatError)
            << "size " << size;
    }
}

TEST(SnapshotFormat, EveryByteFlipIsRejected)
{
    const std::vector<std::uint8_t> image = sampleImage();
    // The whole-file CRC (or, for footer bytes, the magic / CRC
    // fields themselves) must catch a flip anywhere in the file.
    for (std::size_t i = 0; i < image.size(); ++i) {
        std::vector<std::uint8_t> corrupt = image;
        corrupt[i] ^= 0x01;
        EXPECT_THROW(SnapshotReader::fromBytes(std::move(corrupt)),
                     SnapshotFormatError)
            << "byte " << i;
    }
}

TEST(SnapshotFormat, UnsupportedVersionIsRejected)
{
    std::vector<std::uint8_t> image = sampleImage();
    // Bump the version field (LE u32 at offset 8) and re-seal the
    // whole-file CRC so the version gate itself is what trips.
    image[8] += 1;
    const std::size_t body = image.size() - 16;
    const std::uint64_t crc = snapshot::crc64(image.data(), body);
    for (int i = 0; i < 8; ++i)
        image[body + i] =
            static_cast<std::uint8_t>((crc >> (8 * i)) & 0xFF);
    try {
        SnapshotReader::fromBytes(std::move(image));
        FAIL() << "version gate missing";
    } catch (const SnapshotFormatError& error) {
        EXPECT_NE(std::string(error.what()).find("version"),
                  std::string::npos)
            << error.what();
    }
}

TEST(SnapshotFormat, UnknownSectionIdIsRejected)
{
    SnapshotWriter writer;
    writer.beginSection(static_cast<SectionId>(42));
    writer.putU64(1);
    writer.endSection();
    EXPECT_THROW(SnapshotReader::fromBytes(writer.assemble()),
                 SnapshotFormatError);
}

TEST(SnapshotFormat, DuplicateSectionIdIsRejectedAtWrite)
{
    SnapshotWriter writer;
    writer.beginSection(SectionId::Engine);
    writer.endSection();
    EXPECT_THROW(writer.beginSection(SectionId::Engine),
                 std::logic_error);
}

TEST(SnapshotFormat, UnreadTrailingBytesAreRejected)
{
    SnapshotWriter writer;
    writer.beginSection(SectionId::Engine);
    writer.putU64(1);
    writer.putU64(2);
    writer.endSection();
    SnapshotReader reader =
        SnapshotReader::fromBytes(writer.assemble());
    reader.openSection(SectionId::Engine);
    reader.getU64("first");
    EXPECT_THROW(reader.closeSection(), SnapshotFormatError);
}

TEST(SnapshotFormat, FieldReadPastSectionEndIsRejected)
{
    SnapshotWriter writer;
    writer.beginSection(SectionId::Engine);
    writer.putU32(1);
    writer.endSection();
    SnapshotReader reader =
        SnapshotReader::fromBytes(writer.assemble());
    reader.openSection(SectionId::Engine);
    EXPECT_THROW(reader.getU64("too_wide"), SnapshotFormatError);
}

TEST(SnapshotFormat, MissingSectionIsRejected)
{
    SnapshotReader reader = SnapshotReader::fromBytes(sampleImage());
    EXPECT_THROW(reader.openSection(SectionId::Faults),
                 SnapshotFormatError);
}

// ---------------------------------------------------------------------
// Determinism: segmentation and checkpoint/restore are invisible

TEST(CheckpointDeterminism, SegmentedRunMatchesStraightThrough)
{
    const auto factory = [] { return makeTwoTier(4000.0, 11); };
    auto straight = factory();
    const RunReport straight_report = straight->run();

    auto segmented = factory();
    segmented->advanceToTime(secondsToSimTime(0.13));
    // Odd-sized event chunks, then time again, then the rest.
    while (segmented->advanceToEvents(
               segmented->sim().executedEvents() + 777) ==
               StopReason::EventLimit &&
           simTimeToSeconds(segmented->sim().now()) < 0.4) {
    }
    segmented->advanceToTime(secondsToSimTime(0.61));
    const RunReport segmented_report = segmented->finishRun();

    EXPECT_EQ(segmented->sim().traceDigest(),
              straight->sim().traceDigest());
    EXPECT_EQ(segmented->sim().executedEvents(),
              straight->sim().executedEvents());
    EXPECT_EQ(segmented->sim().now(), straight->sim().now());
    EXPECT_EQ(segmented_report.completed, straight_report.completed);
    EXPECT_EQ(segmented_report.endToEnd.p99Ms,
              straight_report.endToEnd.p99Ms);
}

TEST(CheckpointDeterminism, RestoreReproducesStraightThroughDigest)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("ckpt"));
    const auto factory = [] { return makeTwoTier(5000.0, 3); };
    const std::uint64_t reference = straightThroughDigest(factory);

    auto checkpointed = factory();
    checkpointed->advanceToEvents(5000);
    const std::string path =
        snapshot::writeCheckpoint(*checkpointed, dir, "mid");
    const RunReport checkpointed_report = checkpointed->finishRun();
    EXPECT_EQ(checkpointed->sim().traceDigest(), reference);

    auto restored = factory();
    snapshot::restoreFromSnapshot(*restored, path);
    EXPECT_EQ(restored->sim().executedEvents(), 5000u);
    const RunReport restored_report = restored->finishRun();
    EXPECT_EQ(restored->sim().traceDigest(), reference);
    EXPECT_EQ(restored_report.completed,
              checkpointed_report.completed);
    EXPECT_EQ(restored_report.endToEnd.p99Ms,
              checkpointed_report.endToEnd.p99Ms);
    EXPECT_EQ(restored_report.achievedQps,
              checkpointed_report.achievedQps);
}

TEST(CheckpointDeterminism, MidFaultWindowCheckpointRestoresExactly)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("fault"));
    const auto factory = [] {
        return Simulation::fromBundle(faultyBundle(7));
    };
    const std::uint64_t reference = straightThroughDigest(factory);

    // t = 0.5 s is inside both the crash outage (0.4–0.6) and the
    // network degradation window (0.3–0.7).
    auto checkpointed = factory();
    checkpointed->advanceToTime(secondsToSimTime(0.5));
    const std::string path =
        snapshot::writeCheckpoint(*checkpointed, dir, "infault");
    checkpointed->finishRun();
    EXPECT_EQ(checkpointed->sim().traceDigest(), reference);

    auto restored = factory();
    snapshot::restoreFromSnapshot(*restored, path);
    restored->finishRun();
    EXPECT_EQ(restored->sim().traceDigest(), reference);
}

TEST(CheckpointDeterminism, FlowModelCheckpointRestoresExactly)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("flow"));
    models::FanoutFatTreeParams params;
    params.run.qps = 500.0;
    params.run.seed = 5;
    params.run.warmupSeconds = 0.1;
    params.run.durationSeconds = 0.4;
    params.fanout = 4;
    const auto factory = [&params] {
        ConfigBundle bundle = models::fanoutFatTreeBundle(params);
        // Degrade the fabric mid-run so FlowModel fault state is
        // live at the checkpoint too.
        bundle.faults = json::parse(
            R"({"faults": [{"type": "network", "start_s": 0.15,)"
            R"( "end_s": 0.3, "extra_latency_us": 200.0,)"
            R"( "loss_prob": 0.05}]})");
        return Simulation::fromBundle(std::move(bundle));
    };
    const std::uint64_t reference = straightThroughDigest(factory);

    auto checkpointed = factory();
    checkpointed->advanceToTime(secondsToSimTime(0.2));
    const std::string path =
        snapshot::writeCheckpoint(*checkpointed, dir, "flow");
    checkpointed->finishRun();
    EXPECT_EQ(checkpointed->sim().traceDigest(), reference);

    auto restored = factory();
    snapshot::restoreFromSnapshot(*restored, path);
    restored->finishRun();
    EXPECT_EQ(restored->sim().traceDigest(), reference);
}

TEST(CheckpointDeterminism, DiskTierCheckpointRestoresExactly)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("disk"));
    models::CacheStampedeParams params;
    params.run.qps = 1500.0;
    params.run.seed = 9;
    params.run.warmupSeconds = 0.1;
    params.run.durationSeconds = 0.5;
    params.run.clientConnections = 64;
    const auto factory = [&params] {
        return Simulation::fromBundle(
            models::cacheStampedeBundle(params));
    };
    const std::uint64_t reference = straightThroughDigest(factory);

    auto checkpointed = factory();
    checkpointed->advanceToTime(secondsToSimTime(0.25));
    const std::string path =
        snapshot::writeCheckpoint(*checkpointed, dir, "disk");
    checkpointed->finishRun();
    EXPECT_EQ(checkpointed->sim().traceDigest(), reference);

    auto restored = factory();
    snapshot::restoreFromSnapshot(*restored, path);
    restored->finishRun();
    EXPECT_EQ(restored->sim().traceDigest(), reference);
}

TEST(CheckpointDeterminism, ConfigOrSeedDriftIsAHardError)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("drift"));
    auto original = makeTwoTier(4000.0, 11);
    original->advanceToEvents(2000);
    const std::string path =
        snapshot::writeCheckpoint(*original, dir, "orig");

    auto different_load = makeTwoTier(4500.0, 11);
    EXPECT_THROW(snapshot::restoreFromSnapshot(*different_load, path),
                 SnapshotStateError);

    auto different_seed = makeTwoTier(4000.0, 12);
    EXPECT_THROW(snapshot::restoreFromSnapshot(*different_seed, path),
                 SnapshotStateError);

    // Restore targets must be fresh: a simulation that already
    // executed events cannot be replay-validated.
    auto stale = makeTwoTier(4000.0, 11);
    stale->advanceToEvents(100);
    EXPECT_THROW(snapshot::restoreFromSnapshot(*stale, path),
                 std::logic_error);
}

// ---------------------------------------------------------------------
// Crash recovery: discovery, retention, abort ordering

TEST(CheckpointRecovery, NewestValidSnapshotSkipsCorruptFiles)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("scan"));
    auto simulation = makeTwoTier(4000.0, 2);
    simulation->advanceToEvents(3000);
    const std::string older =
        snapshot::writeCheckpoint(*simulation, dir, "job");
    simulation->advanceToEvents(6000);
    const std::string newer =
        snapshot::writeCheckpoint(*simulation, dir, "job");

    auto found = snapshot::newestValidSnapshot(dir, "job");
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->path, newer);

    // Truncate the newest: the scan must fall back to the older one.
    {
        std::ifstream in(newer, std::ios::binary);
        std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
        std::ofstream out(newer,
                          std::ios::binary | std::ios::trunc);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size() / 2));
    }
    found = snapshot::newestValidSnapshot(dir, "job");
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->path, older);

    // Corrupt that one too: nothing valid remains.
    {
        std::ofstream out(older, std::ios::binary | std::ios::trunc);
        out << "not a snapshot";
    }
    EXPECT_FALSE(snapshot::newestValidSnapshot(dir, "job")
                     .has_value());
    // Other prefixes never match.
    EXPECT_FALSE(snapshot::newestValidSnapshot(dir, "other")
                     .has_value());
}

TEST(CheckpointRecovery, ManagerRetainsOnlyNewestK)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("keep"));
    auto simulation = makeTwoTier(4000.0, 4);
    snapshot::CheckpointOptions options;
    options.dir = dir;
    options.prefix = "job";
    options.everyEvents = 1500;
    options.keep = 2;
    snapshot::CheckpointManager manager(*simulation, options);
    const RunReport report = manager.run();
    EXPECT_GT(report.completed, 0u);
    ASSERT_GE(manager.written().size(), 3u)
        << "cadence too coarse for the retention test";

    std::vector<std::string> remaining;
    for (const fs::directory_entry& entry :
         fs::directory_iterator(dir))
        remaining.push_back(entry.path().filename().string());
    ASSERT_EQ(remaining.size(), 2u);
    // The survivors are exactly the newest two written.
    const std::vector<std::string>& written = manager.written();
    for (std::size_t i = written.size() - 2; i < written.size(); ++i)
        EXPECT_TRUE(fs::exists(written[i])) << written[i];
    for (std::size_t i = 0; i + 2 < written.size(); ++i)
        EXPECT_FALSE(fs::exists(written[i])) << written[i];

    // A checkpointed run is still bit-identical.
    EXPECT_EQ(simulation->sim().traceDigest(),
              straightThroughDigest([] {
                  return makeTwoTier(4000.0, 4);
              }));
}

TEST(CheckpointRecovery, TimeCadenceCheckpointsAndStaysDeterministic)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("timecad"));
    auto simulation = makeTwoTier(4000.0, 6);
    snapshot::CheckpointOptions options;
    options.dir = dir;
    options.prefix = "job";
    options.everySimSeconds = 0.2;
    options.keep = 0;  // keep everything
    snapshot::CheckpointManager manager(*simulation, options);
    manager.run();
    // 0.8 s horizon / 0.2 s cadence: marks at 0.2, 0.4, 0.6.
    EXPECT_GE(manager.written().size(), 3u);
    EXPECT_EQ(simulation->sim().traceDigest(),
              straightThroughDigest([] {
                  return makeTwoTier(4000.0, 6);
              }));
}

TEST(CheckpointRecovery, AbortWritesFinalCheckpointThatResumes)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("abort"));
    const auto factory = [] { return makeTwoTier(4000.0, 8); };
    const std::uint64_t reference = straightThroughDigest(factory);

    auto aborted = factory();
    RunControl control;
    aborted->setRunControl(&control);
    std::uint64_t completions = 0;
    aborted->setCompletionListener([&](const Job&, double) {
        if (++completions == 200)
            control.requestAbort(AbortReason::External);
    });
    snapshot::CheckpointOptions options;
    options.dir = dir;
    options.prefix = "job";
    options.everyEvents = 1u << 30;  // only the abort checkpoint
    snapshot::CheckpointManager manager(*aborted, options);
    EXPECT_THROW(manager.run(), SimulationAbortError);
    ASSERT_EQ(manager.written().size(), 1u);

    // The abort-point snapshot restores and runs to a bit-identical
    // finish — a SIGKILL'd-harness stand-in at the API level (the
    // process-level SIGKILL test lives in test_harness).
    auto found = snapshot::newestValidSnapshot(dir, "job");
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->meta.executedEvents,
              aborted->sim().executedEvents());
    auto resumed = factory();
    snapshot::restoreFromSnapshot(*resumed, found->path);
    resumed->finishRun();
    EXPECT_EQ(resumed->sim().traceDigest(), reference);
}

// ---------------------------------------------------------------------
// Runner integration: digests invariant across jobs and resume

TEST(CheckpointRunner, DigestsInvariantAcrossJobsAndSnapshotResume)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("grid"));
    const auto factory = [](double qps, std::uint64_t seed) {
        models::ThriftEchoParams params;
        params.run.qps = qps;
        params.run.seed = seed;
        params.run.warmupSeconds = 0.2;
        params.run.durationSeconds = 0.8;
        return Simulation::fromBundle(
            models::thriftEchoBundle(params));
    };
    const std::vector<double> loads = {800.0, 1400.0};

    const auto digestsOf =
        [&](int jobs, bool checkpoint,
            bool resume) -> std::vector<std::uint64_t> {
        runner::RunnerOptions options;
        options.jobs = jobs;
        options.replications = 2;
        if (checkpoint) {
            options.checkpoint.dir = dir;
            options.checkpoint.everyEvents = 2000;
        }
        options.resumeFromSnapshot = resume;
        runner::SweepRunner sweep(options);
        sweep.addSweep("thrift", loads, factory);
        std::vector<std::uint64_t> digests;
        for (const runner::ReplicatedCurve& curve : sweep.run())
            for (const runner::ReplicatedPoint& point : curve.points)
                for (const runner::ReplicationResult& rep :
                     point.replications) {
                    EXPECT_TRUE(rep.ok()) << rep.error;
                    digests.push_back(rep.traceDigest);
                }
        return digests;
    };

    const std::vector<std::uint64_t> baseline =
        digestsOf(1, false, false);
    ASSERT_EQ(baseline.size(), 4u);
    EXPECT_EQ(digestsOf(2, true, false), baseline);
    EXPECT_EQ(digestsOf(8, true, false), baseline);
    // Resume from the snapshots the previous runs left behind:
    // restore replays to the pin and continues bit-identically.
    EXPECT_EQ(digestsOf(2, true, true), baseline);
}

// ---------------------------------------------------------------------
// Warm-state forking

TEST(WarmFork, UnmodifiedForkReplaysReseedDivergesScaleLoads)
{
    DirJanitor janitor;
    const std::string dir = janitor.track(tempDir("fork"));
    const auto factory = [] { return makeTwoTier(4000.0, 21); };
    const std::uint64_t reference = straightThroughDigest(factory);

    auto warm = factory();
    warm->advanceToTime(secondsToSimTime(0.2));
    const std::string path =
        snapshot::writeCheckpoint(*warm, dir, "warm");

    // scale 1.0 / no reseed: the fork IS the original run.
    auto identical =
        snapshot::forkFromSnapshot(factory, path, {});
    const RunReport identical_report = identical->finishRun();
    EXPECT_EQ(identical->sim().traceDigest(), reference);

    // Reseeded fork: same warm state, decorrelated workload.
    snapshot::ForkOptions reseed;
    reseed.reseedToken = 99;
    auto reseeded = snapshot::forkFromSnapshot(factory, path, reseed);
    reseeded->finishRun();
    EXPECT_NE(reseeded->sim().traceDigest(), reference);

    // Load-scaled fork: clearly more offered (and achieved) load.
    snapshot::ForkOptions scaled;
    scaled.loadScale = 1.5;
    auto heavier = snapshot::forkFromSnapshot(factory, path, scaled);
    const RunReport heavier_report = heavier->finishRun();
    EXPECT_NE(heavier->sim().traceDigest(), reference);
    EXPECT_GT(heavier_report.achievedQps,
              identical_report.achievedQps * 1.2);
}

}  // namespace
}  // namespace uqsim
