/**
 * @file
 * Unit tests for the microservice model building blocks: jobs,
 * service-time models, stage configs, queue disciplines, connection
 * blocking, connection pools, execution paths, and service models.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "uqsim/core/service/connection_pool.h"
#include "uqsim/core/service/service_model.h"
#include "uqsim/core/service/stage_queue.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/random/distributions.h"

namespace uqsim {
namespace {

// ------------------------------------------------------------------ Job

TEST(JobFactory, UniqueIdsAndRootPropagation)
{
    JobFactory factory;
    JobPtr root = factory.createRoot(100, 256);
    EXPECT_EQ(root->id, root->rootId);
    EXPECT_EQ(root->bytes, 256u);
    EXPECT_EQ(root->created, 100);
    JobPtr copy = factory.createCopy(*root);
    EXPECT_NE(copy->id, root->id);
    EXPECT_EQ(copy->rootId, root->rootId);
    EXPECT_EQ(copy->bytes, root->bytes);
    EXPECT_EQ(copy->connectionId, kNoConnection);
    EXPECT_EQ(factory.created(), 2u);
}

// ------------------------------------------------------ ServiceTimeModel

TEST(ServiceTimeModel, FixedPlusRuntimeComponents)
{
    ServiceTimeModel model(
        std::make_shared<random::DeterministicDistribution>(2e-6),
        1e-6, 1e-9);
    random::Rng rng(1);
    // base 2us + 3 jobs * 1us + 1000 bytes * 1ns = 6us.
    EXPECT_EQ(model.sample(rng, 3, 1000, nullptr),
              6 * kMicrosecond);
    EXPECT_NEAR(model.meanSeconds(3, 1000), 6e-6, 1e-12);
}

TEST(ServiceTimeModel, EpollCostGrowsLinearlyWithBatch)
{
    // Paper: epoll's execution time increases linearly with the
    // number of active events returned.
    ServiceTimeModel model(
        std::make_shared<random::DeterministicDistribution>(2e-6),
        0.8e-6);
    random::Rng rng(1);
    const SimTime one = model.sample(rng, 1, 0, nullptr);
    const SimTime eight = model.sample(rng, 8, 0, nullptr);
    EXPECT_EQ(eight - one, secondsToSimTime(7 * 0.8e-6));
}

TEST(ServiceTimeModel, DvfsScalingWithExponent)
{
    hw::DvfsDomain domain(hw::DvfsTable({1.3, 2.6}));
    domain.stepDown();  // slowdown 2x
    ServiceTimeModel cpu(
        std::make_shared<random::DeterministicDistribution>(1e-6), 0.0,
        0.0, 1.0);
    ServiceTimeModel io(
        std::make_shared<random::DeterministicDistribution>(1e-6), 0.0,
        0.0, 0.0);
    random::Rng rng(1);
    EXPECT_EQ(cpu.sample(rng, 1, 0, &domain), 2 * kMicrosecond);
    EXPECT_EQ(io.sample(rng, 1, 0, &domain), kMicrosecond);
}

TEST(ServiceTimeModel, PerFrequencyHistogramOverridesScaling)
{
    hw::DvfsDomain domain(hw::DvfsTable({1.3, 2.6}));
    ServiceTimeModel model(
        std::make_shared<random::DeterministicDistribution>(1e-6));
    model.setFrequencyDistribution(
        1.3, std::make_shared<random::DeterministicDistribution>(
                 5e-6));
    random::Rng rng(1);
    EXPECT_EQ(model.sample(rng, 1, 0, &domain), kMicrosecond);
    domain.stepDown();
    // Per-frequency distribution is used unscaled.
    EXPECT_EQ(model.sample(rng, 1, 0, &domain), 5 * kMicrosecond);
}

TEST(ServiceTimeModel, FromJson)
{
    const auto doc = json::parse(R"({
        "base": {"type": "deterministic", "value": 3e-6},
        "per_job_us": 0.5, "per_byte_ns": 2.0,
        "freq_exponent": 0.5,
        "per_frequency": {
            "1.2": {"type": "deterministic", "value": 9e-6}}})");
    const ServiceTimeModel model = ServiceTimeModel::fromJson(doc);
    EXPECT_DOUBLE_EQ(model.perJob(), 0.5e-6);
    EXPECT_DOUBLE_EQ(model.perByte(), 2e-9);
    EXPECT_DOUBLE_EQ(model.freqExponent(), 0.5);
    hw::DvfsDomain domain(hw::DvfsTable({1.2, 2.6}));
    domain.stepDown();
    random::Rng rng(1);
    // 9us (per-frequency base) + runtime parts scaled by
    // sqrt(2.6/1.2).
    const SimTime sample = model.sample(rng, 2, 0, &domain);
    const double runtime = 1e-6 * std::sqrt(2.6 / 1.2);
    EXPECT_NEAR(simTimeToSeconds(sample), 9e-6 + runtime, 1e-9);
}

// ---------------------------------------------------------- StageConfig

TEST(StageConfig, ParsesPaperTemplate)
{
    // The memcached epoll stage from Listing 1 (with N = 8).
    const auto doc = json::parse(R"({
        "stage_name": "epoll", "stage_id": 0, "queue_type": "epoll",
        "batching": true, "queue_parameter": [null, 8]})");
    const StageConfig config = StageConfig::fromJson(doc);
    EXPECT_EQ(config.name, "epoll");
    EXPECT_EQ(config.id, 0);
    EXPECT_EQ(config.queueType, QueueType::Epoll);
    EXPECT_TRUE(config.batching);
    EXPECT_EQ(config.batchLimit, 8);
    EXPECT_EQ(config.resource, StageResource::Cpu);
}

TEST(StageConfig, ScalarQueueParameter)
{
    const auto doc = json::parse(R"({
        "stage_name": "socket_read", "stage_id": 1,
        "queue_type": "socket", "batching": true,
        "queue_parameter": 4})");
    EXPECT_EQ(StageConfig::fromJson(doc).batchLimit, 4);
}

TEST(StageConfig, DiskResource)
{
    const auto doc = json::parse(R"({
        "stage_name": "disk", "stage_id": 0, "resource": "disk"})");
    EXPECT_EQ(StageConfig::fromJson(doc).resource, StageResource::Disk);
}

TEST(StageConfig, UnknownQueueTypeThrows)
{
    const auto doc = json::parse(
        R"({"stage_name": "x", "stage_id": 0, "queue_type": "ring"})");
    EXPECT_THROW(StageConfig::fromJson(doc), std::invalid_argument);
}

TEST(StageConfig, EnumNames)
{
    EXPECT_STREQ(queueTypeName(QueueType::Epoll), "epoll");
    EXPECT_EQ(queueTypeFromString("single"), QueueType::Single);
    EXPECT_STREQ(stageResourceName(StageResource::Disk), "disk");
    EXPECT_THROW(stageResourceFromString("gpu"), std::invalid_argument);
}

// ----------------------------------------------------------- SingleQueue

JobPtr
makeJob(JobFactory& factory, ConnectionId conn, JobId root = 0)
{
    JobPtr job = factory.createRoot(0, 100);
    job->connectionId = conn;
    if (root != 0)
        job->rootId = root;
    return job;
}

TEST(SingleQueue, NonBatchingPopsOne)
{
    SingleQueue queue(false, 0);
    JobFactory factory;
    queue.push(makeJob(factory, 1));
    queue.push(makeJob(factory, 1));
    EXPECT_TRUE(queue.hasEligible());
    EXPECT_EQ(queue.popBatch().size(), 1u);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(SingleQueue, BatchingRespectsLimit)
{
    SingleQueue queue(true, 3);
    JobFactory factory;
    for (int i = 0; i < 5; ++i)
        queue.push(makeJob(factory, 1));
    EXPECT_EQ(queue.popBatch().size(), 3u);
    EXPECT_EQ(queue.popBatch().size(), 2u);
    EXPECT_TRUE(queue.popBatch().empty());
}

TEST(SingleQueue, UnlimitedBatchTakesAll)
{
    SingleQueue queue(true, 0);
    JobFactory factory;
    for (int i = 0; i < 5; ++i)
        queue.push(makeJob(factory, 1));
    EXPECT_EQ(queue.popBatch().size(), 5u);
}

TEST(SingleQueue, FifoOrder)
{
    SingleQueue queue(false, 0);
    JobFactory factory;
    JobPtr first = makeJob(factory, 1);
    const JobId first_id = first->id;
    queue.push(std::move(first));
    queue.push(makeJob(factory, 1));
    EXPECT_EQ(queue.popBatch()[0]->id, first_id);
}

// ------------------------------------------------------------ EpollQueue

TEST(EpollQueue, TakesFirstNOfEachActiveSubqueue)
{
    ConnectionTable connections;
    EpollQueue queue(2, &connections);
    JobFactory factory;
    for (int i = 0; i < 3; ++i)
        queue.push(makeJob(factory, 1));
    for (int i = 0; i < 1; ++i)
        queue.push(makeJob(factory, 2));
    EXPECT_EQ(queue.activeSubqueues(), 2u);
    const auto batch = queue.popBatch();
    // First 2 of connection 1 plus the single job of connection 2.
    EXPECT_EQ(batch.size(), 3u);
    EXPECT_EQ(queue.size(), 1u);
}

TEST(EpollQueue, BlockedSubqueueIsInactive)
{
    ConnectionTable connections;
    EpollQueue queue(8, &connections);
    JobFactory factory;
    JobPtr blocker = makeJob(factory, 1);
    const JobId other_root = 9999;
    queue.push(makeJob(factory, 1, other_root));
    connections.block(1, blocker->rootId);
    EXPECT_FALSE(queue.hasEligible());
    EXPECT_TRUE(queue.popBatch().empty());
    connections.unblock(1, blocker->rootId);
    EXPECT_TRUE(queue.hasEligible());
    EXPECT_EQ(queue.popBatch().size(), 1u);
}

TEST(EpollQueue, BlockOwnerJobsRemainEligible)
{
    // HTTP/1.1: the request holding the block still flows; queued
    // requests behind it wait.
    ConnectionTable connections;
    EpollQueue queue(8, &connections);
    JobFactory factory;
    JobPtr owner = makeJob(factory, 1);
    const JobId owner_root = owner->rootId;
    queue.push(std::move(owner));
    queue.push(makeJob(factory, 1));  // a later, unrelated request
    connections.block(1, owner_root);
    EXPECT_TRUE(queue.hasEligible());
    const auto batch = queue.popBatch();
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0]->rootId, owner_root);
    EXPECT_FALSE(queue.hasEligible());
}

TEST(EpollQueue, UnlimitedBatchDrainsSubqueues)
{
    EpollQueue queue(0, nullptr);
    JobFactory factory;
    for (int c = 1; c <= 3; ++c) {
        for (int i = 0; i < 4; ++i)
            queue.push(makeJob(factory, c));
    }
    EXPECT_EQ(queue.popBatch().size(), 12u);
}

// ----------------------------------------------------------- SocketQueue

TEST(SocketQueue, ServesOneConnectionAtATime)
{
    ConnectionTable connections;
    SocketQueue queue(4, &connections);
    JobFactory factory;
    for (int i = 0; i < 3; ++i)
        queue.push(makeJob(factory, 1));
    for (int i = 0; i < 2; ++i)
        queue.push(makeJob(factory, 2));
    const auto first = queue.popBatch();
    ASSERT_EQ(first.size(), 3u);
    EXPECT_EQ(first[0]->connectionId, 1);
    const auto second = queue.popBatch();
    ASSERT_EQ(second.size(), 2u);
    EXPECT_EQ(second[0]->connectionId, 2);
}

TEST(SocketQueue, RoundRobinAcrossConnections)
{
    SocketQueue queue(1, nullptr);
    JobFactory factory;
    for (int i = 0; i < 2; ++i) {
        queue.push(makeJob(factory, 1));
        queue.push(makeJob(factory, 2));
    }
    EXPECT_EQ(queue.popBatch()[0]->connectionId, 1);
    EXPECT_EQ(queue.popBatch()[0]->connectionId, 2);
    EXPECT_EQ(queue.popBatch()[0]->connectionId, 1);
    EXPECT_EQ(queue.popBatch()[0]->connectionId, 2);
}

TEST(SocketQueue, SkipsBlockedConnections)
{
    ConnectionTable connections;
    SocketQueue queue(4, &connections);
    JobFactory factory;
    queue.push(makeJob(factory, 1, 500));
    queue.push(makeJob(factory, 2, 600));
    connections.block(1, 42);  // some other request owns the block
    const auto batch = queue.popBatch();
    ASSERT_EQ(batch.size(), 1u);
    EXPECT_EQ(batch[0]->connectionId, 2);
}

TEST(StageQueueFactory, BuildsMatchingDiscipline)
{
    ConnectionTable connections;
    StageConfig config;
    config.queueType = QueueType::Epoll;
    config.batching = true;
    config.batchLimit = 8;
    auto epoll = StageQueue::create(config, &connections);
    EXPECT_NE(dynamic_cast<EpollQueue*>(epoll.get()), nullptr);
    config.queueType = QueueType::Socket;
    auto socket = StageQueue::create(config, &connections);
    EXPECT_NE(dynamic_cast<SocketQueue*>(socket.get()), nullptr);
    config.queueType = QueueType::Single;
    auto single = StageQueue::create(config, &connections);
    EXPECT_NE(dynamic_cast<SingleQueue*>(single.get()), nullptr);
}

// ------------------------------------------------------ connection state

TEST(ConnectionTable, BlockUnblockLifecycle)
{
    ConnectionTable table;
    EXPECT_FALSE(table.isBlocked(5));
    table.block(5, 77);
    EXPECT_TRUE(table.isBlocked(5));
    EXPECT_EQ(table.blockOwner(5), 77u);
    int unblocked_events = 0;
    table.onUnblock([&](ConnectionId) { ++unblocked_events; });
    table.unblock(5, 77);
    EXPECT_FALSE(table.isBlocked(5));
    EXPECT_EQ(table.blockOwner(5), 0u);
    EXPECT_EQ(unblocked_events, 1);
    table.unblock(5, 77);  // idempotent
    EXPECT_EQ(unblocked_events, 1);
}

TEST(ConnectionTable, PipelinedOwnersServedInOrder)
{
    // HTTP/1.1 pipelining: the second request's block queues behind
    // the first; removing the first owner promotes the second.
    ConnectionTable table;
    table.block(5, 100);
    table.block(5, 200);
    EXPECT_EQ(table.blockOwner(5), 100u);
    int unblocked_events = 0;
    table.onUnblock([&](ConnectionId) { ++unblocked_events; });
    // Removing a non-front owner changes nothing visible.
    table.block(5, 300);
    table.unblock(5, 300);
    EXPECT_EQ(unblocked_events, 0);
    EXPECT_EQ(table.blockOwner(5), 100u);
    table.unblock(5, 100);
    EXPECT_EQ(table.blockOwner(5), 200u);
    EXPECT_EQ(unblocked_events, 1);
    table.unblock(5, 200);
    EXPECT_FALSE(table.isBlocked(5));
    EXPECT_EQ(unblocked_events, 2);
}

TEST(BlockRegistry, UnblockByRootAndService)
{
    ConnectionTable nginx, proxy;
    BlockRegistry registry;
    registry.block(1, nginx, 10, "nginx");
    registry.block(1, proxy, 20, "proxy");
    registry.block(2, nginx, 30, "nginx");
    EXPECT_EQ(registry.pendingFor(1), 2u);
    EXPECT_EQ(registry.totalPending(), 3u);
    EXPECT_EQ(registry.unblock(1, "nginx"), 1);
    EXPECT_FALSE(nginx.isBlocked(10));
    EXPECT_TRUE(proxy.isBlocked(20));
    // Empty service matches everything remaining for the root.
    EXPECT_EQ(registry.unblock(1, ""), 1);
    EXPECT_FALSE(proxy.isBlocked(20));
    EXPECT_EQ(registry.totalPending(), 1u);
    EXPECT_EQ(registry.unblock(99, ""), 0);
}

// ------------------------------------------------------- ConnectionPool

TEST(ConnectionPool, GrantsUpToSizeThenQueues)
{
    ConnectionIdAllocator ids;
    ConnectionPool pool("p", 2, ids);
    std::vector<ConnectionId> granted;
    auto grab = [&] {
        pool.acquire(
            [&](ConnectionId id) { granted.push_back(id); });
    };
    grab();
    grab();
    EXPECT_EQ(granted.size(), 2u);
    EXPECT_EQ(pool.available(), 0);
    grab();  // queued
    EXPECT_EQ(granted.size(), 2u);
    EXPECT_EQ(pool.waiters(), 1u);
    pool.release(granted[0]);
    EXPECT_EQ(granted.size(), 3u);  // waiter served on release
    EXPECT_EQ(granted[2], granted[0]);
    EXPECT_EQ(pool.waiters(), 0u);
    EXPECT_EQ(pool.maxWaiters(), 1u);
}

TEST(ConnectionPool, ReleaseValidation)
{
    ConnectionIdAllocator ids;
    ConnectionPool pool("p", 1, ids);
    EXPECT_THROW(pool.release(9999), std::logic_error);
    ConnectionId granted = kNoConnection;
    pool.acquire([&](ConnectionId id) { granted = id; });
    pool.release(granted);
    EXPECT_THROW(pool.release(granted), std::logic_error);
}

TEST(ConnectionPool, ExhaustionServesWaitersInFifoOrder)
{
    ConnectionIdAllocator ids;
    ConnectionPool pool("p", 2, ids);
    std::vector<ConnectionId> granted;
    pool.acquire([&](ConnectionId id) { granted.push_back(id); });
    pool.acquire([&](ConnectionId id) { granted.push_back(id); });
    ASSERT_EQ(granted.size(), 2u);

    // Exhausted: further acquires queue and are served strictly FIFO
    // as connections come back.
    std::vector<int> served;
    for (int waiter = 0; waiter < 3; ++waiter) {
        pool.acquire(
            [&served, waiter](ConnectionId) { served.push_back(waiter); });
    }
    EXPECT_EQ(pool.waiters(), 3u);
    EXPECT_EQ(pool.available(), 0);
    pool.release(granted[0]);
    pool.release(granted[1]);
    ASSERT_EQ(served.size(), 2u);
    EXPECT_EQ(served[0], 0);
    EXPECT_EQ(served[1], 1);
    EXPECT_EQ(pool.waiters(), 1u);
    EXPECT_EQ(pool.maxWaiters(), 3u);
}

TEST(ConnectionPool, DoubleReleaseCaughtAfterWaiterHandoff)
{
    // release() hands the connection straight to a queued waiter
    // without touching the free list.  The double-release guard must
    // still hold once the id has cycled through that handoff path.
    ConnectionIdAllocator ids;
    ConnectionPool pool("p", 1, ids);
    ConnectionId held = kNoConnection;
    pool.acquire([&](ConnectionId id) { held = id; });
    ConnectionId handed = kNoConnection;
    pool.acquire([&](ConnectionId id) { handed = id; });
    EXPECT_EQ(handed, kNoConnection);

    pool.release(held);
    EXPECT_EQ(handed, held);  // waiter now owns it, still busy
    EXPECT_EQ(pool.waiters(), 0u);
    EXPECT_EQ(pool.available(), 0);

    pool.release(handed);  // rightful release returns it to the pool
    EXPECT_EQ(pool.available(), 1);
    EXPECT_THROW(pool.release(handed), std::logic_error);
    EXPECT_THROW(pool.release(9999), std::logic_error);
    EXPECT_EQ(pool.available(), 1);
}

TEST(ConnectionPool, IdsAreGloballyUnique)
{
    ConnectionIdAllocator ids;
    ConnectionPool a("a", 2, ids);
    ConnectionPool b("b", 2, ids);
    std::vector<ConnectionId> seen;
    for (ConnectionPool* pool : {&a, &b}) {
        pool->acquire([&](ConnectionId id) { seen.push_back(id); });
        pool->acquire([&](ConnectionId id) { seen.push_back(id); });
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(std::unique(seen.begin(), seen.end()), seen.end());
}

// -------------------------------------------------------- PathSelector

TEST(PathSelector, DeterministicSinglePath)
{
    PathConfig only;
    only.id = 3;
    only.stageIds = {0};
    PathSelector selector({only});
    EXPECT_TRUE(selector.deterministic());
    random::Rng rng(1);
    EXPECT_EQ(selector.select(rng), 3);
}

TEST(PathSelector, RespectsProbabilities)
{
    PathConfig hit, miss;
    hit.id = 0;
    hit.stageIds = {0};
    hit.probability = 0.9;
    miss.id = 1;
    miss.stageIds = {0};
    miss.probability = 0.1;
    PathSelector selector({hit, miss});
    random::Rng rng(7);
    int misses = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        misses += selector.select(rng) == 1 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(misses) / n, 0.1, 0.01);
}

TEST(PathSelector, ZeroTotalProbabilityThrows)
{
    PathConfig p;
    p.stageIds = {0};
    p.probability = 0.0;
    EXPECT_THROW(PathSelector({p}), std::invalid_argument);
    EXPECT_THROW(PathSelector({}), std::invalid_argument);
}

TEST(PathConfig, FromJson)
{
    const auto doc = json::parse(R"({
        "path_id": 1, "path_name": "memcached_write",
        "stages": [0, 1, 3, 4], "probability": 0.25})");
    const PathConfig config = PathConfig::fromJson(doc);
    EXPECT_EQ(config.id, 1);
    EXPECT_EQ(config.name, "memcached_write");
    EXPECT_EQ(config.stageIds, (std::vector<int>{0, 1, 3, 4}));
    EXPECT_DOUBLE_EQ(config.probability, 0.25);
}

// -------------------------------------------------------- ServiceModel

TEST(ServiceModel, FromJsonListing1)
{
    // The paper's Listing 1 template (extended with service times).
    const auto doc = json::parse(R"({
        "service_name": "memcached",
        "threads": 4,
        "stages": [
            {"stage_name": "epoll", "stage_id": 0,
             "queue_type": "epoll", "batching": true,
             "queue_parameter": [null, 8]},
            {"stage_name": "socket_read", "stage_id": 1,
             "queue_type": "socket", "batching": true,
             "queue_parameter": [8]},
            {"stage_name": "memcached_processing", "stage_id": 2,
             "queue_type": "single", "batching": false,
             "queue_parameter": null},
            {"stage_name": "socket_send", "stage_id": 3,
             "queue_type": "single", "batching": false,
             "queue_parameter": null}],
        "paths": [
            {"path_id": 0, "path_name": "memcached_read",
             "stages": [0, 1, 2, 3]},
            {"path_id": 1, "path_name": "memcached_write",
             "stages": [0, 1, 2, 3]}]})");
    auto model = ServiceModel::fromJson(doc);
    EXPECT_EQ(model->name(), "memcached");
    EXPECT_EQ(model->stages().size(), 4u);
    EXPECT_EQ(model->paths().size(), 2u);
    EXPECT_EQ(model->defaultThreads(), 4);
    EXPECT_EQ(model->pathIdByName("memcached_write"), 1);
    EXPECT_THROW(model->pathIdByName("nope"), std::out_of_range);
    EXPECT_EQ(model->stage(1).queueType, QueueType::Socket);
    EXPECT_THROW(model->stage(9), std::out_of_range);
    EXPECT_THROW(model->path(9), std::out_of_range);
    EXPECT_FALSE(model->usesDisk());
}

TEST(ServiceModel, NonContiguousStageIdsThrow)
{
    StageConfig s0, s2;
    s0.id = 0;
    s2.id = 2;
    PathConfig p;
    p.stageIds = {0};
    EXPECT_THROW(ServiceModel("bad", {s0, s2}, {p}),
                 std::invalid_argument);
}

TEST(ServiceModel, PathReferencingUnknownStageThrows)
{
    StageConfig s0;
    s0.id = 0;
    PathConfig p;
    p.stageIds = {0, 7};
    EXPECT_THROW(ServiceModel("bad", {s0}, {p}),
                 std::invalid_argument);
}

TEST(ServiceModel, ExecutionModelParsing)
{
    EXPECT_EQ(executionModelFromString("simple"),
              ExecutionModel::Simple);
    EXPECT_EQ(executionModelFromString("multi_threaded"),
              ExecutionModel::MultiThreaded);
    EXPECT_THROW(executionModelFromString("gpu"),
                 std::invalid_argument);
    EXPECT_STREQ(executionModelName(ExecutionModel::Simple), "simple");
}

TEST(ServiceModel, SetterValidation)
{
    StageConfig s0;
    s0.id = 0;
    PathConfig p;
    p.stageIds = {0};
    ServiceModel model("m", {s0}, {p});
    EXPECT_THROW(model.setDefaultThreads(0), std::invalid_argument);
    EXPECT_THROW(model.setDefaultDiskChannels(-1),
                 std::invalid_argument);
    EXPECT_THROW(model.setContextSwitchSeconds(-1.0),
                 std::invalid_argument);
}

}  // namespace
}  // namespace uqsim
