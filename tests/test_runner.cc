/**
 * @file
 * Unit tests for the parallel experiment harness
 * (uqsim/runner/sweep_runner): API contracts, aggregation math,
 * equivalence with the serial sweep, and error propagation.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "uqsim/core/sim/sweep.h"
#include "uqsim/models/applications.h"
#include "uqsim/runner/sweep_runner.h"

namespace uqsim {
namespace {

models::ThriftEchoParams
thriftParams(double qps, std::uint64_t seed)
{
    models::ThriftEchoParams params;
    params.run.qps = qps;
    params.run.seed = seed;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 0.8;
    return params;
}

runner::ReplicatedFactory
thriftFactory()
{
    return [](double qps, std::uint64_t seed) {
        return Simulation::fromBundle(
            models::thriftEchoBundle(thriftParams(qps, seed)));
    };
}

TEST(SweepRunner, OptionValidation)
{
    runner::RunnerOptions bad_jobs;
    bad_jobs.jobs = -1;
    EXPECT_THROW(runner::SweepRunner{bad_jobs}, std::invalid_argument);

    runner::RunnerOptions bad_reps;
    bad_reps.replications = 0;
    EXPECT_THROW(runner::SweepRunner{bad_reps}, std::invalid_argument);

    runner::RunnerOptions bad_conf;
    bad_conf.confidence = 1.5;
    EXPECT_THROW(runner::SweepRunner{bad_conf}, std::invalid_argument);
}

TEST(SweepRunner, RejectsEmptyOrNullSweeps)
{
    runner::SweepRunner sweep_runner;
    EXPECT_THROW(sweep_runner.addSweep("x", {}, thriftFactory()),
                 std::invalid_argument);
    EXPECT_THROW(sweep_runner.addSweep("x", {1000.0}, nullptr),
                 std::invalid_argument);
}

TEST(SweepRunner, RunTwiceThrows)
{
    runner::SweepRunner sweep_runner;
    sweep_runner.addSweep("thrift", {5000.0}, thriftFactory());
    sweep_runner.run();
    EXPECT_THROW(sweep_runner.run(), std::logic_error);
    EXPECT_THROW(
        sweep_runner.addSweep("thrift", {5000.0}, thriftFactory()),
        std::logic_error);
}

TEST(SweepRunner, SingleReplicationMatchesSerialSweep)
{
    // One replication with the base seed must be bitwise identical
    // to the serial runLoadSweep of the same factory.
    const std::vector<double> loads = {8000.0, 20000.0};
    const SweepCurve serial =
        runLoadSweep("thrift", loads, [](double qps) {
            return Simulation::fromBundle(
                models::thriftEchoBundle(thriftParams(qps, 1)));
        });

    runner::RunnerOptions options;
    options.jobs = 2;
    options.baseSeed = 1;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("thrift", loads, thriftFactory());
    const SweepCurve parallel =
        sweep_runner.run().front().toSweepCurve();

    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        const RunReport& a = serial.points[i].report;
        const RunReport& b = parallel.points[i].report;
        EXPECT_EQ(a.completed, b.completed);
        EXPECT_EQ(a.events, b.events);
        EXPECT_EQ(a.achievedQps, b.achievedQps);
        EXPECT_EQ(a.endToEnd.meanMs, b.endToEnd.meanMs);
        EXPECT_EQ(a.endToEnd.p99Ms, b.endToEnd.p99Ms);
    }
}

TEST(SweepRunner, AggregatesAcrossReplications)
{
    runner::RunnerOptions options;
    options.jobs = 2;
    options.replications = 4;
    options.baseSeed = 3;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("thrift", {10000.0}, thriftFactory());
    const std::vector<runner::ReplicatedCurve> curves =
        sweep_runner.run();

    ASSERT_EQ(curves.size(), 1u);
    const runner::ReplicatedPoint& point = curves[0].points.at(0);
    ASSERT_EQ(point.replications.size(), 4u);

    // Replication seeds follow the documented split.
    for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(point.replications[static_cast<std::size_t>(r)].seed,
                  runner::replicationSeed(3, r));
    }

    // Across-replication summaries hold one observation per rep.
    EXPECT_EQ(point.meanMs.count(), 4u);
    EXPECT_EQ(point.p99Ms.count(), 4u);
    EXPECT_TRUE(point.meanCi.valid());
    EXPECT_GT(point.meanCi.halfWidth, 0.0);
    EXPECT_NEAR(point.meanCi.mean, point.meanMs.mean(), 1e-12);

    // The pooled recorder holds every completion of every rep.
    std::uint64_t completions = 0;
    for (const runner::ReplicationResult& rep : point.replications)
        completions += rep.report.completed;
    EXPECT_EQ(point.pooled.count(), completions);

    // Merged report: counts sum, latency comes from the pool.
    const RunReport merged = point.mergedReport();
    EXPECT_EQ(merged.completed, completions);
    EXPECT_EQ(merged.endToEnd.count, completions);
    EXPECT_EQ(merged.endToEnd.p99Ms, point.pooled.p99() * 1e3);

    // Different seeds genuinely produce different runs.
    EXPECT_NE(point.replications[0].traceDigest,
              point.replications[1].traceDigest);
}

TEST(SweepRunner, FactoryExceptionsPropagateInStrictMode)
{
    runner::RunnerOptions options;
    options.jobs = 2;
    options.failurePolicy = runner::FailurePolicy::Propagate;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("bad", {1000.0, 2000.0},
                          [](double qps, std::uint64_t) ->
                          std::unique_ptr<Simulation> {
                              if (qps > 1500.0)
                                  throw std::runtime_error("boom");
                              return Simulation::fromBundle(
                                  models::thriftEchoBundle(
                                      thriftParams(qps, 1)));
                          });
    EXPECT_THROW(sweep_runner.run(), std::runtime_error);
}

TEST(SweepRunner, FactoryExceptionsAreIsolatedByDefault)
{
    // The default policy salvages: the healthy point keeps its
    // results, the throwing point is classified, nothing leaks out
    // of run(), and the pool drains (run() returning proves all
    // workers joined).
    runner::RunnerOptions options;
    options.jobs = 2;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("bad", {1000.0, 2000.0},
                          [](double qps, std::uint64_t) ->
                          std::unique_ptr<Simulation> {
                              if (qps > 1500.0)
                                  throw std::runtime_error("boom");
                              return Simulation::fromBundle(
                                  models::thriftEchoBundle(
                                      thriftParams(qps, 1)));
                          });
    const std::vector<runner::ReplicatedCurve> curves =
        sweep_runner.run();
    ASSERT_EQ(curves[0].points.size(), 2u);
    EXPECT_TRUE(curves[0].points[0].replications[0].ok());
    EXPECT_GT(curves[0].points[0].pooled.count(), 0u);
    const runner::ReplicationResult& failed =
        curves[0].points[1].replications[0];
    EXPECT_EQ(failed.failure, runner::FailureKind::InternalError);
    EXPECT_EQ(sweep_runner.failedJobs(), 1);
}

TEST(SweepRunner, UnfinalizedSimulationIsAnError)
{
    runner::RunnerOptions options;
    options.failurePolicy = runner::FailurePolicy::Propagate;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("null", {1000.0},
                          [](double, std::uint64_t) {
                              return std::unique_ptr<Simulation>();
                          });
    EXPECT_THROW(sweep_runner.run(), std::logic_error);
}

TEST(SweepRunner, EffectiveJobsResolvesHardware)
{
    runner::RunnerOptions fixed;
    fixed.jobs = 3;
    EXPECT_EQ(runner::SweepRunner(fixed).effectiveJobs(), 3);

    runner::RunnerOptions hardware;
    hardware.jobs = 0;
    EXPECT_GE(runner::SweepRunner(hardware).effectiveJobs(), 1);
}

TEST(SweepRunner, RunReplicatedConvenience)
{
    runner::RunnerOptions options;
    options.jobs = 2;
    options.replications = 2;
    options.baseSeed = 11;
    const runner::ReplicatedPoint point =
        runner::runReplicated(thriftFactory(), 9000.0, options);
    EXPECT_EQ(point.replications.size(), 2u);
    EXPECT_DOUBLE_EQ(point.offeredQps, 9000.0);
    EXPECT_GT(point.pooled.count(), 0u);
}

TEST(SweepRunner, FormatReplicatedTableShowsIntervals)
{
    runner::RunnerOptions options;
    options.jobs = 2;
    options.replications = 2;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("thrift", {8000.0}, thriftFactory());
    const std::string table =
        runner::formatReplicatedTable(sweep_runner.run());
    EXPECT_NE(table.find("thrift.mean"), std::string::npos);
    EXPECT_NE(table.find("thrift.p99"), std::string::npos);
    EXPECT_NE(table.find("±"), std::string::npos);
}

TEST(SweepRunner, MultipleSweepsKeepTheirOrder)
{
    runner::RunnerOptions options;
    options.jobs = 2;
    runner::SweepRunner sweep_runner(options);
    sweep_runner.addSweep("a", {5000.0}, thriftFactory());
    sweep_runner.addSweep("b", {6000.0}, thriftFactory());
    const std::vector<runner::ReplicatedCurve> curves =
        sweep_runner.run();
    ASSERT_EQ(curves.size(), 2u);
    EXPECT_EQ(curves[0].label, "a");
    EXPECT_EQ(curves[1].label, "b");
    EXPECT_DOUBLE_EQ(curves[0].points[0].offeredQps, 5000.0);
    EXPECT_DOUBLE_EQ(curves[1].points[0].offeredQps, 6000.0);
}

}  // namespace
}  // namespace uqsim
