/**
 * @file
 * Storage-tier tests: the shared-bandwidth disk model (hw::Disk),
 * the cache-tier/backing-store service models, the disk-channel
 * inheritance sentinel, the DVFS bypass for frequency-insensitive
 * stages, and the PercentileRecorder reset fixes.
 *
 * The closed forms come from the equal-split degeneration of max-min
 * fairness: every operation occupies exactly one direction head, so
 * each in-flight operation of a direction gets capacity / count.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "uqsim/core/sim/simulation.h"
#include "uqsim/hw/disk.h"
#include "uqsim/hw/dvfs.h"
#include "uqsim/models/applications.h"
#include "uqsim/models/cache_tier.h"
#include "uqsim/models/stage_presets.h"
#include "uqsim/random/rng.h"
#include "uqsim/runner/sweep_runner.h"
#include "uqsim/stats/percentile_recorder.h"

namespace uqsim {
namespace {

constexpr double kReadBps = 1e8;  // 100 MB/s test disk

hw::Disk::Config
diskConfig(double read_bps = kReadBps, double write_bps = 0.0,
           int queue_depth = 0)
{
    hw::Disk::Config config;
    config.name = "d0";
    config.readBytesPerSecond = read_bps;
    config.writeBytesPerSecond = write_bps;
    config.queueDepth = queue_depth;
    return config;
}

// ------------------------------------------- raw disk closed forms

TEST(Disk, TwoEqualReadersEachGetHalfTheBandwidth)
{
    Simulator sim(1);
    hw::Disk disk(sim, "m0", diskConfig());
    const std::uint64_t bytes = 50'000'000;  // 0.5 s alone
    double done_a = -1.0, done_b = -1.0;
    sim.scheduleAt(
        0,
        [&]() {
            disk.submit(hw::Disk::OpKind::Read, bytes, 0.0,
                        [&]() { done_a = simTimeToSeconds(sim.now()); },
                        "op/a");
            disk.submit(hw::Disk::OpKind::Read, bytes, 0.0,
                        [&]() { done_b = simTimeToSeconds(sim.now()); },
                        "op/b");
        },
        "submit");
    sim.run();

    // Each reader runs at kReadBps / 2 the whole time, so both
    // finish at 2 * bytes / capacity.
    const double expected = 2.0 * bytes / kReadBps;
    EXPECT_NEAR(done_a, expected, 1e-9);
    EXPECT_NEAR(done_b, expected, 1e-9);
    EXPECT_EQ(disk.readsCompleted(), 2u);
    EXPECT_EQ(disk.bytesRead(), 2 * bytes);
    EXPECT_EQ(disk.queuedOps(), 0u);
    EXPECT_NEAR(disk.busySeconds(sim.now()), expected, 1e-9);
    EXPECT_NEAR(disk.utilization(sim.now()), 1.0, 1e-9);
}

TEST(Disk, ReadAndWriteHeadsShareNothing)
{
    Simulator sim(1);
    hw::Disk disk(sim, "m0", diskConfig(kReadBps, kReadBps / 2.0));
    const std::uint64_t bytes = 10'000'000;
    double read_done = -1.0, write_done = -1.0;
    sim.scheduleAt(
        0,
        [&]() {
            disk.submit(hw::Disk::OpKind::Read, bytes, 0.0,
                        [&]() { read_done = simTimeToSeconds(sim.now()); },
                        "op/r");
            disk.submit(hw::Disk::OpKind::Write, bytes, 0.0,
                        [&]() { write_done = simTimeToSeconds(sim.now()); },
                        "op/w");
        },
        "submit");
    sim.run();

    // Directions are independent resources: the concurrent write
    // does not slow the read, and vice versa.
    EXPECT_NEAR(read_done, bytes / kReadBps, 1e-9);
    EXPECT_NEAR(write_done, bytes / (kReadBps / 2.0), 1e-9);
    EXPECT_EQ(disk.readsCompleted(), 1u);
    EXPECT_EQ(disk.writesCompleted(), 1u);
    EXPECT_EQ(disk.bytesWritten(), bytes);
}

TEST(Disk, StaggeredArrivalResharesIncrementally)
{
    Simulator sim(1);
    hw::Disk disk(sim, "m0", diskConfig());
    const std::uint64_t bytes = 10'000'000;  // 0.1 s alone
    double done_a = -1.0, done_b = -1.0;
    sim.scheduleAt(
        0,
        [&]() {
            disk.submit(hw::Disk::OpKind::Read, bytes, 0.0,
                        [&]() { done_a = simTimeToSeconds(sim.now()); },
                        "op/a");
        },
        "submit/a");
    // B arrives when A is half done (0.05 s): A's remaining half
    // then moves at half rate (finish 0.05 + 0.1), after which B's
    // remaining half runs at full rate (finish 0.15 + 0.05).
    sim.scheduleAt(
        secondsToSimTime(0.05),
        [&]() {
            disk.submit(hw::Disk::OpKind::Read, bytes, 0.0,
                        [&]() { done_b = simTimeToSeconds(sim.now()); },
                        "op/b");
        },
        "submit/b");
    sim.run();

    EXPECT_NEAR(done_a, 0.15, 1e-9);
    EXPECT_NEAR(done_b, 0.20, 1e-9);
    EXPECT_NEAR(disk.busySeconds(sim.now()), 0.20, 1e-9);
}

TEST(Disk, BoundedQueueDepthAdmitsInFifoOrder)
{
    Simulator sim(1);
    hw::Disk disk(sim, "m0", diskConfig(kReadBps, 0.0, 1));
    const std::uint64_t bytes = 10'000'000;  // 0.1 s each
    std::vector<int> order;
    std::vector<double> finish;
    sim.scheduleAt(
        0,
        [&]() {
            for (int i = 0; i < 3; ++i) {
                disk.submit(hw::Disk::OpKind::Read, bytes, 0.0,
                            [&, i]() {
                                order.push_back(i);
                                finish.push_back(
                                    simTimeToSeconds(sim.now()));
                            },
                            "op");
            }
        },
        "submit");
    sim.run();

    // Depth 1 serializes the disk: strict FIFO, one at a time.
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_NEAR(finish[0], 0.1, 1e-9);
    EXPECT_NEAR(finish[1], 0.2, 1e-9);
    EXPECT_NEAR(finish[2], 0.3, 1e-9);
    EXPECT_EQ(disk.queuedOps(), 2u);
    EXPECT_EQ(disk.peakQueueDepth(), 2u);
}

TEST(Disk, AccessLatencyRidesAfterTheLastByte)
{
    Simulator sim(1);
    hw::Disk disk(sim, "m0", diskConfig());
    const std::uint64_t bytes = 10'000'000;
    double done = -1.0;
    sim.scheduleAt(
        0,
        [&]() {
            disk.submit(hw::Disk::OpKind::Read, bytes, 0.004,
                        [&]() { done = simTimeToSeconds(sim.now()); },
                        "op");
        },
        "submit");
    sim.run();

    EXPECT_NEAR(done, 0.1 + 0.004, 1e-9);
    // The tail is latency, not occupancy: busy time covers only the
    // transfer.
    EXPECT_NEAR(disk.busySeconds(sim.now()), 0.1, 1e-9);
}

TEST(Disk, RejectsNonPositiveReadBandwidth)
{
    Simulator sim(1);
    hw::Disk::Config config;
    config.readBytesPerSecond = 0.0;
    EXPECT_THROW(hw::Disk(sim, "m0", config), std::invalid_argument);
}

// -------------------------------- disk-channel inheritance sentinel

models::ThreeTierParams
quickThreeTier()
{
    models::ThreeTierParams params;
    params.run.qps = 500.0;
    params.run.warmupSeconds = 0.05;
    params.run.durationSeconds = 0.2;
    params.run.clientConnections = 32;
    return params;
}

json::JsonValue&
mongoInstanceJson(ConfigBundle& bundle)
{
    // threeTierBundle deploys nginx, memcached, mongodb in order.
    return bundle.graph.asObject()
        .at("services")
        .asArray()[2]
        .asObject()
        .at("instances")
        .asArray()[0];
}

TEST(DiskChannels, ExplicitZeroNoLongerInheritsTheModelDefault)
{
    // Regression: disk_channels: 0 used to silently fall back to the
    // service's default channel count.  It now means "no channels",
    // which a disk-using model must reject.
    ConfigBundle bundle = models::threeTierBundle(quickThreeTier());
    mongoInstanceJson(bundle).asObject()["disk_channels"] = 0;
    try {
        Simulation::fromBundle(bundle);
        FAIL() << "explicit disk_channels: 0 must not be inherited";
    } catch (const std::invalid_argument& error) {
        EXPECT_NE(std::string(error.what()).find("has no disk channels"),
                  std::string::npos)
            << error.what();
    }
}

TEST(DiskChannels, AbsentKeyStillInheritsTheModelDefault)
{
    ConfigBundle bundle = models::threeTierBundle(quickThreeTier());
    mongoInstanceJson(bundle).asObject().erase("disk_channels");
    auto simulation = Simulation::fromBundle(bundle);
    const RunReport report = simulation->run();
    EXPECT_GT(report.completed, 0u);
}

// --------------------------------------- DVFS bypass for disk time

TEST(ServiceTime, FrequencyExponentZeroBypassesDvfs)
{
    // Disk stages are profiled frequency-insensitive (freq_exponent
    // 0); their samples must be bit-identical with and without a
    // DVFS domain, at any frequency, while consuming the same RNG
    // stream.
    const ServiceTimeModel model = ServiceTimeModel::fromJson(
        models::serviceTimeJson(models::expUs(100.0), 0.0, 0.0, 0.0));
    EXPECT_TRUE(model.frequencyInsensitive());

    hw::DvfsDomain slow(hw::DvfsTable::paperDefault());
    slow.setIndex(0);  // lowest frequency, maximum slowdown
    random::Rng with_dvfs(42);
    random::Rng without(42);
    EXPECT_EQ(model.sample(with_dvfs, 1, 0, &slow),
              model.sample(without, 1, 0, nullptr));
    EXPECT_EQ(with_dvfs.nextU64(), without.nextU64());

    // Sanity: an exponent-1 stage at the same frequency does scale.
    const ServiceTimeModel sensitive = ServiceTimeModel::fromJson(
        models::serviceTimeJson(models::expUs(100.0), 0.0, 0.0, 1.0));
    EXPECT_FALSE(sensitive.frequencyInsensitive());
    random::Rng a(42);
    random::Rng b(42);
    EXPECT_GT(sensitive.sample(a, 1, 0, &slow),
              sensitive.sample(b, 1, 0, nullptr));
}

// -------------------------------------- PercentileRecorder hygiene

TEST(PercentileRecorder, MergeResetAddComputesFreshPercentiles)
{
    stats::PercentileRecorder source;
    for (int i = 0; i < 1000; ++i)
        source.add(1000.0 + i);
    stats::PercentileRecorder recorder;
    recorder.merge(source);
    EXPECT_EQ(recorder.count(), 1000u);

    recorder.reset();
    EXPECT_TRUE(recorder.empty());
    // Regression: reset() used to clear() the buffers, pinning their
    // capacity at the pooled size for the rest of a sweep.
    EXPECT_EQ(recorder.values().capacity(), 0u);

    recorder.add(1.0);
    recorder.add(3.0);
    EXPECT_DOUBLE_EQ(recorder.p50(), 2.0);
    EXPECT_DOUBLE_EQ(recorder.mean(), 2.0);
    EXPECT_DOUBLE_EQ(recorder.max(), 3.0);
}

// ------------------------------------------- cache-tier closed form

TEST(CacheTier, EffectiveHitRateDiscountsByTtlSurvival)
{
    // No TTL (or no key population) leaves the profiled rate alone.
    EXPECT_DOUBLE_EQ(models::effectiveHitRate(0.9, 1000.0, 0.0, 10.0),
                     0.9);
    EXPECT_DOUBLE_EQ(models::effectiveHitRate(0.9, 1000.0, 1e4, 0.0),
                     0.9);
    // Longer TTLs keep more fills alive: monotone toward the
    // profiled rate.
    const double short_ttl =
        models::effectiveHitRate(0.9, 1000.0, 1e4, 1.0);
    const double long_ttl =
        models::effectiveHitRate(0.9, 1000.0, 1e4, 60.0);
    EXPECT_LT(short_ttl, long_ttl);
    EXPECT_LE(long_ttl, 0.9);
    EXPECT_GT(short_ttl, 0.0);
}

TEST(CacheTier, RejectsOutOfRangeHitProbability)
{
    models::CacheTierOptions options;
    options.hitProbability = 1.5;
    EXPECT_THROW(models::cacheTierServiceJson(options),
                 std::invalid_argument);
}

// ------------------------------------- cache-stampede end to end

models::CacheStampedeParams
quickStampede(double hit_rate, std::uint64_t seed = 11)
{
    models::CacheStampedeParams params;
    params.run.qps = 1500.0;
    params.run.seed = seed;
    params.run.warmupSeconds = 0.1;
    params.run.durationSeconds = 0.5;
    params.run.clientConnections = 64;
    params.hitRate = hit_rate;
    return params;
}

TEST(CacheStampede, DiskCountersSurfaceInTheReport)
{
    auto simulation =
        Simulation::fromBundle(models::cacheStampedeBundle(
            quickStampede(0.5)));
    const RunReport report = simulation->run();

    ASSERT_GT(report.completed, 100u);
    ASSERT_EQ(report.disks.size(), 1u);
    const DiskStats& disk = report.disks.at("store_server/store_disk");
    EXPECT_GT(disk.reads, 0u);
    EXPECT_GT(disk.writes, 0u);
    EXPECT_GT(disk.bytesRead, disk.reads);  // 64 KiB per read
    EXPECT_GT(disk.busySeconds, 0.0);
    EXPECT_GT(disk.utilization, 0.0);
    EXPECT_LE(disk.utilization, 1.0);
    // The disk axis reaches the structured rendering too.
    EXPECT_NE(report.toJsonString().find("store_server/store_disk"),
              std::string::npos);
    EXPECT_NE(report.toString().find("store_server/store_disk"),
              std::string::npos);
}

TEST(CacheStampede, FallingHitRateSaturatesTheBackingStore)
{
    auto run = [](double hit_rate) {
        auto simulation = Simulation::fromBundle(
            models::cacheStampedeBundle(quickStampede(hit_rate)));
        return simulation->run();
    };
    const RunReport warm = run(0.95);
    const RunReport cold = run(0.0);

    const DiskStats& warm_disk =
        warm.disks.at("store_server/store_disk");
    const DiskStats& cold_disk =
        cold.disks.at("store_server/store_disk");
    EXPECT_GT(cold_disk.reads, 5 * warm_disk.reads);
    EXPECT_GT(cold_disk.utilization, warm_disk.utilization);
    EXPECT_GT(cold.tiers.at("store").p99Ms,
              warm.tiers.at("store").p99Ms);
}

TEST(CacheStampede, DigestsIdenticalAcrossRunnerJobCounts)
{
    // The shared disk reshapes in operation-id order, so the trace
    // digest must be a pure function of (config, seed) regardless of
    // how many runner threads execute the sweep — including points
    // with heavy contended I/O (hit rate 0.2).
    auto grid = [](int jobs) {
        runner::RunnerOptions options;
        options.jobs = jobs;
        options.replications = 2;
        options.baseSeed = 17;
        runner::SweepRunner sweep_runner(options);
        sweep_runner.addSweep(
            "stampede", {0.9, 0.2},
            [](double hit_rate, std::uint64_t seed) {
                return Simulation::fromBundle(
                    models::cacheStampedeBundle(
                        quickStampede(hit_rate, seed)));
            });
        return sweep_runner.run();
    };

    const auto serial = grid(1);
    for (int jobs : {2, 8}) {
        const auto parallel = grid(jobs);
        ASSERT_EQ(serial.size(), parallel.size());
        for (std::size_t c = 0; c < serial.size(); ++c) {
            ASSERT_EQ(serial[c].points.size(),
                      parallel[c].points.size());
            for (std::size_t p = 0; p < serial[c].points.size(); ++p) {
                const auto& lhs = serial[c].points[p].replications;
                const auto& rhs = parallel[c].points[p].replications;
                ASSERT_EQ(lhs.size(), rhs.size());
                for (std::size_t r = 0; r < lhs.size(); ++r) {
                    EXPECT_EQ(lhs[r].traceDigest, rhs[r].traceDigest)
                        << "jobs=" << jobs << " point=" << p
                        << " rep=" << r;
                    EXPECT_GT(lhs[r].report.completed, 0u);
                }
            }
        }
    }
}

TEST(CacheStampede, ColdStartZeroProbabilityVariantIsLegal)
{
    // Regression: the path tree used to validate the probability sum
    // after *each* variant, so a document whose first variant has
    // probability 0 (hit rate 0 -> the read-hit leg) was rejected
    // even though the full document sums to 1.
    auto simulation = Simulation::fromBundle(
        models::cacheStampedeBundle(quickStampede(0.0)));
    const RunReport report = simulation->run();
    EXPECT_GT(report.completed, 0u);
    EXPECT_GT(report.disks.at("store_server/store_disk").utilization,
              0.0);
}

TEST(CacheStampede, MachinesJsonDiskSchemaIsValidated)
{
    ConfigBundle bundle =
        models::cacheStampedeBundle(quickStampede(0.5));
    json::JsonValue& store_machine = bundle.machines.asObject()
                                         .at("machines")
                                         .asArray()[1];
    json::JsonValue& disk =
        store_machine.asObject().at("disks").asArray()[0];
    disk.asObject().erase("read_mbps");
    disk.asObject()["read_mpbs"] = 200.0;  // typo on purpose
    try {
        Simulation::fromBundle(bundle);
        FAIL() << "misspelled disk key must be rejected";
    } catch (const std::exception& error) {
        EXPECT_NE(std::string(error.what()).find("read_mpbs"),
                  std::string::npos)
            << error.what();
    }
}

}  // namespace
}  // namespace uqsim
