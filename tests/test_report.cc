/**
 * @file
 * Tests for result rendering: RunReport text/CSV, sweep tables,
 * saturation detection, and the umbrella header.
 */

#include <gtest/gtest.h>

#include "uqsim/uqsim.h"  // umbrella header must be self-contained

namespace uqsim {
namespace {

RunReport
sampleReport()
{
    RunReport report;
    report.offeredQps = 1000.0;
    report.achievedQps = 990.0;
    report.completed = 990;
    report.endToEnd = LatencyStats{990, 1.5, 1.2, 3.0, 4.5, 9.0};
    report.tiers["nginx"] = LatencyStats{990, 0.5, 0.4, 1.0, 1.5, 2.0};
    return report;
}

TEST(RunReport, ToStringMentionsEverything)
{
    const std::string text = sampleReport().toString();
    EXPECT_NE(text.find("offered 1000"), std::string::npos);
    EXPECT_NE(text.find("achieved 990"), std::string::npos);
    EXPECT_NE(text.find("p99 4.500 ms"), std::string::npos);
    EXPECT_NE(text.find("tier nginx"), std::string::npos);
}

TEST(RunReport, CsvRowMatchesHeader)
{
    const std::string header = RunReport::csvHeader();
    const std::string row = sampleReport().toCsvRow();
    const auto count = [](const std::string& s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count(header), count(row));
    EXPECT_NE(row.find("990.0000"), std::string::npos);
}

TEST(SweepCurve, SaturationDetection)
{
    SweepCurve curve;
    curve.label = "svc";
    auto add_point = [&](double offered, double achieved, double p99) {
        SweepPoint point;
        point.offeredQps = offered;
        point.report.achievedQps = achieved;
        point.report.endToEnd.p99Ms = p99;
        curve.points.push_back(point);
    };
    add_point(1000.0, 1000.0, 0.5);
    add_point(2000.0, 1990.0, 0.7);
    add_point(3000.0, 2500.0, 80.0);  // saturated (achieved < 95%)
    add_point(4000.0, 2500.0, 200.0);
    EXPECT_DOUBLE_EQ(curve.saturationQps(), 3000.0);
    EXPECT_DOUBLE_EQ(curve.tailBeforeSaturationMs(), 0.7);

    SweepCurve healthy;
    healthy.points = {curve.points[0], curve.points[1]};
    EXPECT_DOUBLE_EQ(healthy.saturationQps(), 0.0);
}

TEST(SweepCurve, FormatTableAlignsCurves)
{
    SweepCurve a, b;
    a.label = "a";
    b.label = "b";
    SweepPoint point;
    point.offeredQps = 100.0;
    point.report.achievedQps = 99.0;
    point.report.endToEnd.meanMs = 0.5;
    point.report.endToEnd.p99Ms = 1.0;
    a.points.push_back(point);
    a.points.push_back(point);
    b.points.push_back(point);  // shorter curve: '-' padding
    const std::string table = formatSweepTable({a, b});
    EXPECT_NE(table.find("a.p99"), std::string::npos);
    EXPECT_NE(table.find("b.mean"), std::string::npos);
    EXPECT_NE(table.find('-'), std::string::npos);
}

TEST(Linspace, EndpointsAndSpacing)
{
    const auto values = linspace(0.0, 10.0, 5);
    ASSERT_EQ(values.size(), 5u);
    EXPECT_DOUBLE_EQ(values.front(), 0.0);
    EXPECT_DOUBLE_EQ(values.back(), 10.0);
    EXPECT_DOUBLE_EQ(values[2], 5.0);
    EXPECT_EQ(linspace(3.0, 9.0, 1),
              (std::vector<double>{3.0}));
    EXPECT_THROW(linspace(0.0, 1.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace uqsim
