/**
 * @file
 * Integration tests exercising the paper's headline behaviors
 * end-to-end: tail-at-scale fan-out effects, batching amortization
 * vs. the BigHouse single-queue model, HTTP/1.1 serialization, and
 * load-balancing scale-out.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "uqsim/bighouse/bighouse.h"
#include "uqsim/core/sim/simulation.h"
#include "uqsim/models/applications.h"
#include "uqsim/models/stage_presets.h"
#include "uqsim/random/distributions.h"

namespace uqsim {
namespace {

RunReport
runTailAtScale(int cluster, double slow_fraction, std::uint64_t seed = 3)
{
    models::TailAtScaleParams params;
    params.run.qps = 40.0;
    params.run.warmupSeconds = 0.5;
    params.run.durationSeconds = 4.5;
    params.run.seed = seed;
    params.run.clientConnections = 64;
    params.clusterSize = cluster;
    params.slowFraction = slow_fraction;
    auto simulation =
        Simulation::fromBundle(models::tailAtScaleBundle(params));
    return simulation->run();
}

TEST(TailAtScale, FanoutAmplifiesTail)
{
    // With no slow servers, the end-to-end latency is the max over N
    // exponential leaves: grows ~ln(N).
    const RunReport n5 = runTailAtScale(5, 0.0);
    const RunReport n50 = runTailAtScale(50, 0.0);
    EXPECT_GT(n50.endToEnd.p50Ms, n5.endToEnd.p50Ms);
    // max of N exp(1ms) ~ H_N ms: ln(5)=1.6, ln(50)=3.9.
    EXPECT_NEAR(n5.endToEnd.p50Ms, 2.2, 0.8);
    EXPECT_NEAR(n50.endToEnd.p50Ms, 4.4, 1.2);
}

TEST(TailAtScale, OnePercentSlowServersDominateLargeClusters)
{
    // Paper §V-A: for clusters >= 100 servers, 1% slow servers is
    // sufficient to drive tail latency high.  P(request touches a
    // slow server) = 1 - (1-p)^N -> at N=100, p99 is slow-bound.
    const RunReport clean = runTailAtScale(100, 0.0);
    const RunReport one_percent = runTailAtScale(100, 0.01);
    // Slow leaf mean service is 10 ms; the p99 must reflect it.
    EXPECT_GT(one_percent.endToEnd.p99Ms, clean.endToEnd.p99Ms * 1.8);
    EXPECT_GT(one_percent.endToEnd.p99Ms, 15.0);
    // A 5-server cluster with the same fraction rarely hits a slow
    // machine (the bundle rounds 1% of 5 to zero slow servers).
    const RunReport small = runTailAtScale(5, 0.01);
    EXPECT_LT(small.endToEnd.p99Ms, one_percent.endToEnd.p99Ms);
}

TEST(TailAtScale, MoreSlowServersRaiseMedian)
{
    const RunReport one = runTailAtScale(50, 0.02);
    const RunReport ten = runTailAtScale(50, 0.10);
    // With 10% slow servers nearly every request hits one: even the
    // median reflects the 10 ms slow service.
    EXPECT_GT(ten.endToEnd.p50Ms, one.endToEnd.p50Ms);
    EXPECT_GT(ten.endToEnd.p50Ms, 10.0);
}

/** Raises the epoll base cost of a bundle's first service so the
 *  batching-amortization effect has a wide margin. */
void
setEpollBaseUs(ConfigBundle& bundle, double base_us)
{
    json::JsonValue& stage =
        bundle.services[0].asObject()["stages"].asArray()[0];
    json::JsonValue& time = stage.asObject()["service_time"];
    json::JsonValue base = json::JsonValue::makeObject();
    base.asObject()["type"] = "deterministic";
    base.asObject()["value"] = base_us * 1e-6;
    time.asObject()["base"] = std::move(base);
}

TEST(BatchingAblation, DisablingEpollBatchingLowersCapacity)
{
    // Thrift echo with a 10 us epoll: unbatched capacity ~36 kQPS,
    // batched (8-deep) ~52 kQPS.  At 45 kQPS offered, batching keeps
    // up and the unbatched variant saturates.
    models::ThriftEchoParams params;
    params.run.qps = 45000.0;
    params.run.warmupSeconds = 0.4;
    params.run.durationSeconds = 1.6;
    ConfigBundle batched = models::thriftEchoBundle(params);
    setEpollBaseUs(batched, 10.0);
    ConfigBundle unbatched = models::thriftEchoBundle(params);
    setEpollBaseUs(unbatched, 10.0);
    // Strip batching from every stage: each becomes a plain FIFO
    // served one request at a time (the full epoll cost is paid per
    // request, exactly the BigHouse assumption).
    for (json::JsonValue& stage :
         unbatched.services[0].asObject()["stages"].asArray()) {
        stage.asObject()["queue_type"] = "single";
        stage.asObject()["batching"] = false;
        stage.asObject().erase("queue_parameter");
    }
    const RunReport with = Simulation::fromBundle(batched)->run();
    const RunReport without = Simulation::fromBundle(unbatched)->run();
    EXPECT_NEAR(with.achievedQps, 45000.0, 2500.0);
    EXPECT_LT(without.achievedQps, 40000.0);
    EXPECT_GT(with.achievedQps, without.achievedQps * 1.1);
}

TEST(BigHouseComparison, SingleQueueSaturatesEarlier)
{
    // Fig. 13's structural claim with matched per-stage costs: at a
    // load between the two capacities, µqSim (batching) keeps up
    // while the BigHouse model has already saturated.
    models::ThriftEchoParams params;
    params.run.qps = 45000.0;
    params.run.warmupSeconds = 0.4;
    params.run.durationSeconds = 1.6;
    ConfigBundle bundle = models::thriftEchoBundle(params);
    const double epoll_base_us = 10.0;
    setEpollBaseUs(bundle, epoll_base_us);
    auto uqsim_sim = Simulation::fromBundle(bundle);
    const RunReport uqsim_report = uqsim_sim->run();

    // BigHouse model of the same server: one queue, service time =
    // full epoll + read + proc + send per request.
    bighouse::BigHouseOptions options;
    options.seed = params.run.seed;
    options.warmupSeconds = params.run.warmupSeconds;
    options.durationSeconds = params.run.durationSeconds;
    bighouse::BigHouseSimulation bh(options);
    const double per_request =
        (epoll_base_us + models::kEpollPerJobUs +
         models::kSocketBaseUs + 64.0 * 2e-3 /*read 64B in us*/ +
         models::kThriftEchoUs + models::kSocketBaseUs +
         64.0 * 1e-3) *
        1e-6;
    bh.addStation(
        {"thrift", 1,
         std::make_shared<random::ExponentialDistribution>(
             per_request)});
    const RunReport bh_report = bh.run(params.run.qps);

    // µqSim (batched epoll, ~60 kQPS capacity) keeps up at 45 kQPS;
    // the single-queue model (capacity ~1/25us = 40 kQPS) saturates.
    EXPECT_NEAR(uqsim_report.achievedQps, 45000.0, 2500.0);
    EXPECT_LT(bh_report.achievedQps, 42000.0);
    EXPECT_GT(uqsim_report.achievedQps,
              bh_report.achievedQps * 1.05);
}

TEST(Http11Blocking, SingleConnectionSerializesRequests)
{
    // A single client connection with HTTP/1.1 blocking behaves as a
    // closed loop: completions are capped near 1/RTT no matter the
    // offered load.
    models::TwoTierParams params;
    params.run.qps = 20000.0;
    params.run.warmupSeconds = 0.3;
    params.run.durationSeconds = 1.3;
    params.run.clientConnections = 1;
    auto simulation =
        Simulation::fromBundle(models::twoTierBundle(params));
    const RunReport report = simulation->run();
    // RTT ~ 0.2 ms -> ceiling in the low thousands of QPS.
    EXPECT_LT(report.achievedQps, 8000.0);
    EXPECT_EQ(simulation->dispatcher().leakedBlocks(), 0u);

    // With 320 connections the same offered load flows freely.
    params.run.clientConnections = 320;
    auto open = Simulation::fromBundle(models::twoTierBundle(params));
    const RunReport open_report = open->run();
    EXPECT_NEAR(open_report.achievedQps, 20000.0, 1500.0);
}

TEST(LoadBalancing, ScaleOutRaisesCapacity)
{
    // At 50 kQPS: 8 webservers keep up; 4 saturate (Fig. 8 shape).
    models::LoadBalancerParams params;
    params.run.qps = 50000.0;
    params.run.warmupSeconds = 0.4;
    params.run.durationSeconds = 1.4;
    params.webServers = 8;
    const RunReport eight =
        Simulation::fromBundle(models::loadBalancerBundle(params))
            ->run();
    params.webServers = 4;
    const RunReport four =
        Simulation::fromBundle(models::loadBalancerBundle(params))
            ->run();
    EXPECT_NEAR(eight.achievedQps, 50000.0, 2500.0);
    EXPECT_LT(four.achievedQps, 45000.0);
}

TEST(Fanout, SaturationDecreasesSlightlyWithFanout)
{
    // Fig. 10: as fan-out grows, the probability that one slow leaf
    // delays a request rises, so tail latency at equal load grows.
    auto run_fanout = [](int fanout) {
        models::FanoutParams params;
        params.run.qps = 6000.0;
        params.run.warmupSeconds = 0.4;
        params.run.durationSeconds = 1.6;
        params.fanout = fanout;
        return Simulation::fromBundle(models::fanoutBundle(params))
            ->run();
    };
    const RunReport f4 = run_fanout(4);
    const RunReport f16 = run_fanout(16);
    EXPECT_GT(f16.endToEnd.p99Ms, f4.endToEnd.p99Ms);
}

TEST(ComplexApp, SocialNetworkLeaksNothing)
{
    models::SocialNetworkParams params;
    params.run.qps = 4000.0;
    params.run.warmupSeconds = 0.3;
    params.run.durationSeconds = 1.3;
    auto simulation =
        Simulation::fromBundle(models::socialNetworkBundle(params));
    const RunReport report = simulation->run();
    EXPECT_NEAR(report.achievedQps, 4000.0, 400.0);
    EXPECT_EQ(simulation->dispatcher().leakedHops(), 0u);
    EXPECT_EQ(simulation->dispatcher().leakedBlocks(), 0u);
    // Per-tier latencies recorded for every service on the path.
    EXPECT_GE(simulation->tierLatencies().size(), 6u);
}

TEST(ThreadScaling, MemcachedThreadsDoNotMoveTwoTierSaturation)
{
    // Paper Fig. 5: NGINX is the 2-tier bottleneck; adding memcached
    // threads does not raise throughput.
    models::TwoTierParams params;
    params.run.qps = 50000.0;
    params.run.warmupSeconds = 0.4;
    params.run.durationSeconds = 1.4;
    params.nginxWorkers = 4;
    params.memcachedThreads = 1;
    const RunReport one_thread =
        Simulation::fromBundle(models::twoTierBundle(params))->run();
    params.memcachedThreads = 4;
    const RunReport four_threads =
        Simulation::fromBundle(models::twoTierBundle(params))->run();
    // Both saturate at the same NGINX-bound level (within noise).
    EXPECT_NEAR(one_thread.achievedQps, four_threads.achievedQps,
                four_threads.achievedQps * 0.08);
    // ...while doubling NGINX workers raises capacity.
    params.nginxWorkers = 8;
    const RunReport eight_workers =
        Simulation::fromBundle(models::twoTierBundle(params))->run();
    EXPECT_GT(eight_workers.achievedQps,
              four_threads.achievedQps * 1.2);
}

}  // namespace
}  // namespace uqsim
