/**
 * @file
 * Queueing-theory validation: the simulator is checked against
 * closed-form results (M/M/1 sojourn time, M/M/k Erlang-C,
 * utilization), plus determinism across equal seeds.  These are the
 * strongest correctness tests we can run without the paper's
 * physical testbed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "uqsim/core/app/dispatcher.h"
#include "uqsim/core/sim/simulation.h"
#include "uqsim/models/applications.h"
#include "uqsim/random/distributions.h"
#include "uqsim/stats/percentile_recorder.h"
#include "uqsim/workload/client.h"

namespace uqsim {
namespace {

/**
 * Builds a single-instance, single-stage M/M/k system with service
 * rate mu per server and measures sojourn times at offered load
 * lambda.  No network, no IRQ: pure queueing.
 */
struct MmkResult {
    double meanSojourn = 0.0;
    double utilization = 0.0;
    std::uint64_t completions = 0;
};

MmkResult
runMmk(double lambda, double mu, int servers, std::uint64_t seed,
       double duration = 60.0)
{
    Simulator sim(seed);
    hw::Cluster cluster(sim, hw::NetworkConfig{0.0, 0.0});
    Deployment deployment(sim, cluster);

    StageConfig stage;
    stage.id = 0;
    stage.name = "serve";
    stage.time = ServiceTimeModel(
        std::make_shared<random::ExponentialDistribution>(1.0 / mu));
    PathConfig path;
    path.id = 0;
    path.name = "serve";
    path.stageIds = {0};
    auto model = std::make_shared<ServiceModel>(
        "station", std::vector<StageConfig>{stage},
        std::vector<PathConfig>{path});
    model->setExecutionModel(ExecutionModel::Simple);
    deployment.registerModel(model);
    InstanceConfig config;
    config.cores = servers;
    deployment.deployInstance("station", "", config);

    PathTree tree;
    PathVariant variant;
    PathNode node;
    node.id = 0;
    node.service = "station";
    variant.nodes = {node};
    tree.addVariant(variant);

    Dispatcher dispatcher(sim, cluster.network(), tree, deployment);
    stats::PercentileRecorder sojourns;
    const double warmup = duration * 0.1;
    dispatcher.setOnRequestComplete(
        [&](const Job& job, SimTime latency) {
            if (simTimeToSeconds(job.created) >= warmup)
                sojourns.add(simTimeToSeconds(latency));
        });

    // Open-loop Poisson arrivals, one connection per request batch
    // (connection identity is irrelevant for a single queue).
    random::RngStream arrivals(seed, "mmk/arrivals");
    std::function<void()> arrive = [&]() {
        JobPtr job = dispatcher.jobs().createRoot(sim.now(), 1);
        dispatcher.startRequest(
            std::move(job), deployment.instance("station", 0), 1);
        const double gap =
            -std::log(arrivals.nextDoubleOpenLeft()) / lambda;
        sim.scheduleAfter(secondsToSimTime(gap), arrive);
    };
    sim.scheduleAt(0, arrive);
    sim.run(secondsToSimTime(duration));

    MmkResult result;
    result.meanSojourn = sojourns.mean();
    result.utilization =
        deployment.instance("station", 0).cpuUtilization();
    result.completions = sojourns.count();
    return result;
}

/** Erlang-C probability of queueing for an M/M/k system. */
double
erlangC(double lambda, double mu, int k)
{
    const double a = lambda / mu;  // offered load in Erlangs
    double factorial = 1.0;
    double sum = 0.0;
    for (int i = 0; i < k; ++i) {
        if (i > 0)
            factorial *= i;
        sum += std::pow(a, i) / factorial;
    }
    factorial *= (k > 1) ? k : 1;
    const double term =
        std::pow(a, k) / factorial * (k / (k - a));
    return term / (sum + term);
}

struct MmkCase {
    double lambda;
    double mu;
    int servers;
};

class MmkSojournTest : public ::testing::TestWithParam<MmkCase> {};

TEST_P(MmkSojournTest, MeanSojournMatchesClosedForm)
{
    const MmkCase& tc = GetParam();
    const MmkResult result =
        runMmk(tc.lambda, tc.mu, tc.servers, /*seed=*/77);
    double expected;
    if (tc.servers == 1) {
        expected = 1.0 / (tc.mu - tc.lambda);
    } else {
        const double pq = erlangC(tc.lambda, tc.mu, tc.servers);
        expected = pq / (tc.servers * tc.mu - tc.lambda) + 1.0 / tc.mu;
    }
    EXPECT_NEAR(result.meanSojourn, expected, expected * 0.06)
        << "lambda=" << tc.lambda << " mu=" << tc.mu
        << " k=" << tc.servers;
    // Utilization = lambda / (k mu).
    EXPECT_NEAR(result.utilization,
                tc.lambda / (tc.servers * tc.mu), 0.02);
}

INSTANTIATE_TEST_SUITE_P(
    LoadSweep, MmkSojournTest,
    ::testing::Values(MmkCase{200.0, 1000.0, 1},   // rho = 0.2
                      MmkCase{500.0, 1000.0, 1},   // rho = 0.5
                      MmkCase{800.0, 1000.0, 1},   // rho = 0.8
                      MmkCase{900.0, 1000.0, 1},   // rho = 0.9
                      MmkCase{1600.0, 1000.0, 2},  // M/M/2 rho = 0.8
                      MmkCase{3200.0, 1000.0, 4}), // M/M/4 rho = 0.8
    [](const ::testing::TestParamInfo<MmkCase>& info) {
        const MmkCase& tc = info.param;
        return "k" + std::to_string(tc.servers) + "_rho" +
               std::to_string(static_cast<int>(
                   100.0 * tc.lambda / (tc.servers * tc.mu)));
    });

TEST(QueueingTheory, Mm1TailIsExponential)
{
    // M/M/1 sojourn is exponential with rate (mu - lambda):
    // p99 = ln(100) * mean.
    const MmkResult result = runMmk(500.0, 1000.0, 1, 99, 120.0);
    EXPECT_GT(result.completions, 10000u);
    // p99/mean ratio check via a second run recorder would need the
    // recorder; validate the mean only here (the ratio is covered by
    // the stats tests).
    EXPECT_NEAR(result.meanSojourn, 1.0 / 500.0, 0.0003);
}

TEST(QueueingTheory, ThroughputEqualsOfferedBelowSaturation)
{
    const MmkResult result = runMmk(600.0, 1000.0, 1, 5, 60.0);
    // 54 seconds of measurement at 600 QPS.
    EXPECT_NEAR(static_cast<double>(result.completions) / 54.0, 600.0,
                25.0);
}

TEST(Determinism, EqualSeedsGiveIdenticalResults)
{
    const MmkResult a = runMmk(700.0, 1000.0, 2, 1234, 20.0);
    const MmkResult b = runMmk(700.0, 1000.0, 2, 1234, 20.0);
    EXPECT_EQ(a.completions, b.completions);
    EXPECT_DOUBLE_EQ(a.meanSojourn, b.meanSojourn);
    EXPECT_DOUBLE_EQ(a.utilization, b.utilization);
}

TEST(Determinism, DifferentSeedsDiffer)
{
    const MmkResult a = runMmk(700.0, 1000.0, 2, 1, 20.0);
    const MmkResult b = runMmk(700.0, 1000.0, 2, 2, 20.0);
    EXPECT_NE(a.meanSojourn, b.meanSojourn);
}

TEST(Determinism, FullApplicationBundleIsReproducible)
{
    models::TwoTierParams params;
    params.run.qps = 5000.0;
    params.run.warmupSeconds = 0.2;
    params.run.durationSeconds = 1.0;
    params.run.seed = 42;
    auto a = Simulation::fromBundle(models::twoTierBundle(params));
    auto b = Simulation::fromBundle(models::twoTierBundle(params));
    const RunReport ra = a->run();
    const RunReport rb = b->run();
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_DOUBLE_EQ(ra.endToEnd.p99Ms, rb.endToEnd.p99Ms);
    EXPECT_DOUBLE_EQ(ra.endToEnd.meanMs, rb.endToEnd.meanMs);
    EXPECT_EQ(ra.events, rb.events);
}

TEST(QueueingTheory, LatencyMonotonicInLoad)
{
    double previous = 0.0;
    for (double lambda : {100.0, 400.0, 700.0, 900.0}) {
        const MmkResult result = runMmk(lambda, 1000.0, 1, 3, 40.0);
        EXPECT_GT(result.meanSojourn, previous)
            << "at lambda " << lambda;
        previous = result.meanSojourn;
    }
}

}  // namespace
}  // namespace uqsim
