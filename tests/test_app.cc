/**
 * @file
 * Tests for the application layer: path DAGs, deployment, and the
 * dispatcher's routing semantics (fan-out copies, fan-in sync,
 * sticky affinity, pooled connections, blocking operations).
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "uqsim/core/app/dispatcher.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/random/distributions.h"

namespace uqsim {
namespace {

// ------------------------------------------------------------- PathTree

TEST(PathTree, FromJsonSingleVariant)
{
    const auto doc = json::parse(R"({
        "nodes": [
            {"node_id": 0, "service": "nginx", "path": "request",
             "children": [1],
             "on_enter": [{"op": "block_connection"}]},
            {"node_id": 1, "service": "memcached",
             "path": "memcached_read", "children": [2]},
            {"node_id": 2, "service": "nginx", "path": "response",
             "children": [], "request_bytes": 640,
             "on_leave": [{"op": "unblock_connection",
                           "service": "nginx"}]}]})");
    const PathTree tree = PathTree::fromJson(doc);
    EXPECT_EQ(tree.variantCount(), 1u);
    const PathVariant& variant = tree.variant(0);
    EXPECT_EQ(variant.rootId, 0);
    EXPECT_EQ(variant.terminalCount, 1);
    EXPECT_EQ(variant.nodes[1].fanIn, 1);
    EXPECT_EQ(variant.nodes[2].requestBytes, 640u);
    ASSERT_EQ(variant.nodes[0].onEnter.size(), 1u);
    EXPECT_EQ(variant.nodes[0].onEnter[0].kind,
              PathNodeOp::Kind::BlockConnection);
    ASSERT_EQ(variant.nodes[2].onLeave.size(), 1u);
    EXPECT_EQ(variant.nodes[2].onLeave[0].service, "nginx");
    const auto services = tree.referencedServices();
    EXPECT_EQ(services,
              (std::vector<std::string>{"nginx", "memcached"}));
}

TEST(PathTree, FanInComputedFromParents)
{
    PathVariant variant;
    PathNode root, a, b, join;
    root.id = 0;
    root.service = "proxy";
    root.children = {1, 2};
    a.id = 1;
    a.service = "web";
    a.children = {3};
    b.id = 2;
    b.service = "web";
    b.children = {3};
    join.id = 3;
    join.service = "proxy";
    variant.nodes = {root, a, b, join};
    variant.finalize();
    EXPECT_EQ(variant.nodes[3].fanIn, 2);
    EXPECT_EQ(variant.rootId, 0);
    EXPECT_EQ(variant.terminalCount, 1);
}

TEST(PathTree, RejectsMalformedDags)
{
    auto make_variant = [](std::vector<PathNode> nodes) {
        PathVariant variant;
        variant.nodes = std::move(nodes);
        return variant;
    };
    {
        // Cycle 0 -> 1 -> 0: no root.
        PathNode a, b;
        a.id = 0;
        a.children = {1};
        b.id = 1;
        b.children = {0};
        EXPECT_THROW(make_variant({a, b}).finalize(),
                     std::invalid_argument);
    }
    {
        // Two roots.
        PathNode a, b;
        a.id = 0;
        b.id = 1;
        EXPECT_THROW(make_variant({a, b}).finalize(),
                     std::invalid_argument);
    }
    {
        // Unknown child.
        PathNode a;
        a.id = 0;
        a.children = {5};
        EXPECT_THROW(make_variant({a}).finalize(),
                     std::invalid_argument);
    }
    {
        // Non-contiguous ids.
        PathNode a, b;
        a.id = 0;
        a.children = {2};
        b.id = 2;
        EXPECT_THROW(make_variant({a, b}).finalize(),
                     std::invalid_argument);
    }
    EXPECT_THROW(make_variant({}).finalize(), std::invalid_argument);
}

TEST(PathTree, VariantSampling)
{
    const auto doc = json::parse(R"({
        "paths": [
            {"probability": 0.75, "nodes": [
                {"node_id": 0, "service": "a", "children": []}]},
            {"probability": 0.25, "nodes": [
                {"node_id": 0, "service": "b", "children": []}]}]})");
    const PathTree tree = PathTree::fromJson(doc);
    EXPECT_EQ(tree.variantCount(), 2u);
    random::Rng rng(3);
    int second = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        second += tree.sampleVariant(rng) == 1 ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(second) / n, 0.25, 0.01);
}

TEST(PathTree, ResolveExecPaths)
{
    const auto doc = json::parse(R"({
        "nodes": [
            {"node_id": 0, "service": "svc", "path": "beta",
             "children": [1]},
            {"node_id": 1, "service": "svc", "children": []}]})");
    PathTree tree = PathTree::fromJson(doc);
    tree.resolveExecPaths([](const std::string& service,
                             const std::string& path) {
        EXPECT_EQ(service, "svc");
        EXPECT_EQ(path, "beta");
        return 7;
    });
    EXPECT_EQ(tree.node(0, 0).execPathId, 7);
    EXPECT_EQ(tree.node(0, 1).execPathId, -1);  // unpinned
}

TEST(PathTree, UnknownOpThrows)
{
    EXPECT_THROW(PathNodeOp::fromJson(json::parse(
                     R"({"op": "explode"})")),
                 json::JsonError);
}

// -------------------------------------------------- dispatcher fixtures

/** A trivial single-stage service model. */
ServiceModelPtr
tinyModel(const std::string& name, double proc_us, int threads = 1)
{
    StageConfig stage;
    stage.id = 0;
    stage.name = "proc";
    stage.time = ServiceTimeModel(
        std::make_shared<random::DeterministicDistribution>(proc_us *
                                                            1e-6));
    PathConfig path;
    path.id = 0;
    path.name = "serve";
    path.stageIds = {0};
    auto model = std::make_shared<ServiceModel>(
        name, std::vector<StageConfig>{stage},
        std::vector<PathConfig>{path});
    model->setDefaultThreads(threads);
    return model;
}

/** epoll(0 cost) -> proc: connection blocking gates the epoll. */
ServiceModelPtr
epollFrontModel(const std::string& name, double proc_us,
                int threads = 1)
{
    StageConfig epoll;
    epoll.id = 0;
    epoll.name = "epoll";
    epoll.queueType = QueueType::Epoll;
    epoll.batching = true;
    epoll.batchLimit = 8;
    StageConfig proc;
    proc.id = 1;
    proc.name = "proc";
    proc.time = ServiceTimeModel(
        std::make_shared<random::DeterministicDistribution>(proc_us *
                                                            1e-6));
    PathConfig path;
    path.id = 0;
    path.name = "serve";
    path.stageIds = {0, 1};
    auto model = std::make_shared<ServiceModel>(
        name, std::vector<StageConfig>{epoll, proc},
        std::vector<PathConfig>{path});
    model->setDefaultThreads(threads);
    return model;
}

struct AppFixture {
    AppFixture() : sim(7), cluster(sim), deployment(sim, cluster) {}

    void
    finalize()
    {
        dispatcher = std::make_unique<Dispatcher>(
            sim, cluster.network(), tree, deployment);
        dispatcher->setOnRequestComplete(
            [this](const Job& job, SimTime latency) {
                completions.emplace_back(job.rootId, latency);
            });
    }

    /**
     * Issues a request on the client connection identified by the
     * test-local @p conn_key.  Connection ids are globally unique
     * (they share the pool allocator, as the real Client does), so
     * the key is mapped through the deployment's allocator.
     */
    JobPtr
    issue(MicroserviceInstance& front, int conn_key)
    {
        auto [it, inserted] = clientConns.try_emplace(conn_key, 0);
        if (inserted)
            it->second = deployment.connectionIds().next();
        JobPtr job = dispatcher->jobs().createRoot(sim.now(), 100);
        JobPtr keep = job;
        dispatcher->startRequest(std::move(job), front, it->second);
        return keep;
    }

    std::map<int, ConnectionId> clientConns;

    Simulator sim;
    hw::Cluster cluster;
    Deployment deployment;
    PathTree tree;
    std::unique_ptr<Dispatcher> dispatcher;
    std::vector<std::pair<JobId, SimTime>> completions;
};

PathVariant
chainVariant(std::vector<std::string> services)
{
    PathVariant variant;
    for (std::size_t i = 0; i < services.size(); ++i) {
        PathNode node;
        node.id = static_cast<int>(i);
        node.service = services[i];
        if (i + 1 < services.size())
            node.children = {static_cast<int>(i) + 1};
        variant.nodes.push_back(node);
    }
    return variant;
}

// --------------------------------------------------------- NameInterner

TEST(NameInterner, AssignsDenseIdsInInternOrder)
{
    NameInterner names;
    EXPECT_EQ(names.size(), 0u);
    EXPECT_EQ(names.intern("nginx"), 0u);
    EXPECT_EQ(names.intern("memcached"), 1u);
    EXPECT_EQ(names.intern("nginx"), 0u);  // idempotent
    EXPECT_EQ(names.size(), 2u);
    EXPECT_EQ(names.name(0), "nginx");
    EXPECT_EQ(names.name(1), "memcached");
    EXPECT_EQ(names.find("memcached"), 1u);
    EXPECT_EQ(names.find("mongodb"), NameInterner::kNone);
    EXPECT_THROW(names.name(2), std::out_of_range);
    EXPECT_THROW(names.name(NameInterner::kNone), std::out_of_range);
}

TEST(NameInterner, DeploymentInternsModelsInRegistrationOrder)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("front", 10.0));
    app.deployment.registerModel(tinyModel("back", 10.0));
    EXPECT_EQ(app.deployment.names().find("front"), 0u);
    EXPECT_EQ(app.deployment.names().find("back"), 1u);
    EXPECT_EQ(app.deployment.model("back")->nameId(), 1u);
}

// ------------------------------------------------------------ Deployment

TEST(Deployment, RegisterAndDeploy)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("svc", 10.0));
    EXPECT_EQ(app.deployment.instanceCount("svc"), 0);
    const int index = app.deployment.deployInstance("svc", "", {});
    EXPECT_EQ(index, 0);
    EXPECT_EQ(app.deployment.instanceCount("svc"), 1);
    EXPECT_EQ(app.deployment.instance("svc", 0).name(), "svc.0");
    EXPECT_THROW(app.deployment.instance("svc", 1), std::out_of_range);
    EXPECT_THROW(app.deployment.instance("nope", 0),
                 std::out_of_range);
    EXPECT_THROW(app.deployment.registerModel(nullptr),
                 std::invalid_argument);
}

TEST(Deployment, RoundRobinPick)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("svc", 10.0));
    for (int i = 0; i < 3; ++i)
        app.deployment.deployInstance("svc", "", {});
    random::Rng rng(1);
    std::vector<std::string> picks;
    for (int i = 0; i < 6; ++i)
        picks.push_back(app.deployment.pickInstance("svc", rng).name());
    EXPECT_EQ(picks, (std::vector<std::string>{"svc.0", "svc.1",
                                               "svc.2", "svc.0",
                                               "svc.1", "svc.2"}));
}

TEST(Deployment, PoolSizesConfigurable)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("a", 1.0));
    app.deployment.registerModel(tinyModel("b", 1.0));
    app.deployment.deployInstance("a", "", {});
    app.deployment.deployInstance("b", "", {});
    app.deployment.setPoolSize("a", "b", 3);
    ConnectionPool& pool = app.deployment.pool(
        app.deployment.instance("a", 0),
        app.deployment.instance("b", 0));
    EXPECT_EQ(pool.size(), 3);
    // Same pair returns the same pool.
    EXPECT_EQ(&pool, &app.deployment.pool(
                         app.deployment.instance("a", 0),
                         app.deployment.instance("b", 0)));
    // Reverse direction is a different pool with the default size.
    ConnectionPool& reverse = app.deployment.pool(
        app.deployment.instance("b", 0),
        app.deployment.instance("a", 0));
    EXPECT_EQ(reverse.size(), Deployment::kDefaultPoolSize);
}

TEST(Deployment, LoadGraphJson)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("front", 1.0));
    app.deployment.registerModel(tinyModel("back", 1.0));
    app.cluster.addMachine({.name = "m0", .cores = 8});
    app.deployment.loadGraphJson(json::parse(R"({
        "services": [
            {"service": "front", "lb_policy": "round_robin",
             "connection_pools": {"back": 5},
             "instances": [{"machine": "m0", "threads": 2}]},
            {"service": "back",
             "instances": [{"machine": "m0", "threads": 1},
                            {"machine": "m0", "threads": 1}]}]})"));
    EXPECT_EQ(app.deployment.instanceCount("front"), 1);
    EXPECT_EQ(app.deployment.instanceCount("back"), 2);
    EXPECT_EQ(app.deployment
                  .pool(app.deployment.instance("front", 0),
                        app.deployment.instance("back", 0))
                  .size(),
              5);
}

TEST(InstanceConfigJson, ParsesFields)
{
    const InstanceConfig config = instanceConfigFromJson(json::parse(
        R"({"threads": 4, "cores": 2, "disk_channels": 3,
            "own_dvfs": true, "scheduling": "stage_order"})"));
    EXPECT_EQ(config.threads, 4);
    EXPECT_EQ(config.cores, 2);
    EXPECT_EQ(config.diskChannels, 3);
    EXPECT_TRUE(config.ownDvfsDomain);
    EXPECT_EQ(config.policy, SchedulingPolicy::StageOrder);
    EXPECT_THROW(
        instanceConfigFromJson(json::parse(R"({"scheduling": "x"})")),
        json::JsonError);
}

// ------------------------------------------------------------ Dispatcher

TEST(Dispatcher, SingleNodeRequestCompletes)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("svc", 10.0));
    app.deployment.deployInstance("svc", "", {});
    app.tree.addVariant(chainVariant({"svc"}));
    app.finalize();
    JobPtr job = app.issue(app.deployment.instance("svc", 0), 1);
    app.sim.run();
    ASSERT_EQ(app.completions.size(), 1u);
    EXPECT_EQ(app.completions[0].first, job->rootId);
    // 10us processing + 2x wire latency (20us each way).
    EXPECT_EQ(app.completions[0].second,
              secondsToSimTime(10e-6 + 2 * 20e-6));
    EXPECT_EQ(app.dispatcher->requestsCompleted(), 1u);
    EXPECT_EQ(app.dispatcher->activeRequests(), 0u);
}

TEST(Dispatcher, ChainRoutesThroughTiers)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("front", 10.0));
    app.deployment.registerModel(tinyModel("back", 20.0));
    app.deployment.deployInstance("front", "", {});
    app.deployment.deployInstance("back", "", {});
    app.tree.addVariant(chainVariant({"front", "back", "front"}));
    app.finalize();
    std::map<std::string, int> tier_visits;
    app.dispatcher->setTierLatencyHook(
        [&](std::uint32_t tier_id, double) {
            ++tier_visits[app.deployment.names().name(tier_id)];
        });
    app.issue(app.deployment.instance("front", 0), 1);
    app.sim.run();
    ASSERT_EQ(app.completions.size(), 1u);
    EXPECT_EQ(tier_visits["front"], 2);
    EXPECT_EQ(tier_visits["back"], 1);
    EXPECT_EQ(app.dispatcher->leakedHops(), 0u);
    // front(10) + back(20) + front(10) + client wire 2x20 +
    // inter-tier wire 2x20 (machineless instances: wire only).
    EXPECT_EQ(app.completions[0].second,
              secondsToSimTime(40e-6 + 4 * 20e-6));
}

TEST(Dispatcher, StickyAffinityReturnsToSameInstance)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("front", 10.0, 1));
    app.deployment.registerModel(tinyModel("back", 10.0));
    app.deployment.deployInstance("front", "", {});
    app.deployment.deployInstance("front", "", {});
    app.deployment.deployInstance("back", "", {});
    app.tree.addVariant(chainVariant({"front", "back", "front"}));
    app.finalize();
    // Issue to front.1 explicitly: the response leg must come back
    // to front.1, not round-robin to front.0.
    std::map<std::string, int> completed_at;
    for (MicroserviceInstance* inst : app.deployment.allInstances()) {
        // Count node completions per instance via tier hook order.
        (void)inst;
    }
    app.issue(app.deployment.instance("front", 1), 1);
    app.sim.run();
    EXPECT_EQ(app.deployment.instance("front", 1).completedJobs(), 2u);
    EXPECT_EQ(app.deployment.instance("front", 0).completedJobs(), 0u);
}

TEST(Dispatcher, FanoutCopiesAndFanInSync)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("proxy", 1.0, 4));
    app.deployment.registerModel(tinyModel("leaf", 10.0));
    app.deployment.deployInstance("proxy", "", {});
    for (int i = 0; i < 3; ++i)
        app.deployment.deployInstance("leaf", "", {});

    PathVariant variant;
    PathNode root;
    root.id = 0;
    root.service = "proxy";
    root.children = {1, 2, 3};
    variant.nodes.push_back(root);
    for (int i = 0; i < 3; ++i) {
        PathNode leaf;
        leaf.id = 1 + i;
        leaf.service = "leaf";
        leaf.instanceIndex = i;
        leaf.children = {4};
        variant.nodes.push_back(leaf);
    }
    PathNode join;
    join.id = 4;
    join.service = "proxy";
    variant.nodes.push_back(join);
    app.tree.addVariant(std::move(variant));
    app.finalize();

    app.issue(app.deployment.instance("proxy", 0), 1);
    app.sim.run();
    ASSERT_EQ(app.completions.size(), 1u);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(app.deployment.instance("leaf", i).completedJobs(),
                  1u)
            << "leaf " << i;
    }
    // Proxy ran the root and the join exactly once (fan-in merged
    // the three copies).
    EXPECT_EQ(app.deployment.instance("proxy", 0).completedJobs(), 2u);
    EXPECT_EQ(app.dispatcher->leakedHops(), 0u);
}

TEST(Dispatcher, PoolBackpressureDelaysDownstreamHops)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("front", 1.0, 8));
    app.deployment.registerModel(tinyModel("back", 1000.0, 8));
    app.deployment.deployInstance("front", "", {});
    app.deployment.deployInstance("back", "", {});
    app.deployment.setPoolSize("front", "back", 2);
    app.tree.addVariant(chainVariant({"front", "back", "front"}));
    app.finalize();
    for (int i = 0; i < 6; ++i)
        app.issue(app.deployment.instance("front", 0), 100 + i);
    app.sim.run();
    EXPECT_EQ(app.completions.size(), 6u);
    // With pool size 2 and 1ms backend service, the 6 requests pass
    // the pool in 3 waves: last completion >= 3ms.
    SimTime last = 0;
    for (const auto& [root, latency] : app.completions)
        last = std::max(last, latency);
    EXPECT_GE(last, secondsToSimTime(3e-3));
    EXPECT_EQ(app.dispatcher->leakedHops(), 0u);
}

TEST(Dispatcher, BlockingSerializesConnection)
{
    // Two requests on the SAME client connection with HTTP/1.1
    // blocking: the second is only served after the first's
    // response unblocks the connection.
    AppFixture app;
    app.deployment.registerModel(epollFrontModel("front", 100.0, 4));
    app.deployment.registerModel(tinyModel("back", 100.0, 4));
    app.deployment.deployInstance("front", "", {});
    app.deployment.deployInstance("back", "", {});
    PathVariant variant = chainVariant({"front", "back", "front"});
    PathNodeOp block;
    block.kind = PathNodeOp::Kind::BlockConnection;
    variant.nodes[0].onEnter.push_back(block);
    PathNodeOp unblock;
    unblock.kind = PathNodeOp::Kind::UnblockConnection;
    unblock.service = "front";
    variant.nodes[2].onLeave.push_back(unblock);
    app.tree.addVariant(std::move(variant));
    app.finalize();
    app.issue(app.deployment.instance("front", 0), 1);
    app.issue(app.deployment.instance("front", 0), 1);
    app.sim.run();
    ASSERT_EQ(app.completions.size(), 2u);
    // Serialized: second latency ~2x first.
    EXPECT_GT(app.completions[1].second,
              app.completions[0].second +
                  secondsToSimTime(250e-6));
    EXPECT_EQ(app.dispatcher->leakedBlocks(), 0u);

    // Control: on DIFFERENT connections requests overlap.
    AppFixture control;
    control.deployment.registerModel(
        epollFrontModel("front", 100.0, 4));
    control.deployment.registerModel(tinyModel("back", 100.0, 4));
    control.deployment.deployInstance("front", "", {});
    control.deployment.deployInstance("back", "", {});
    PathVariant v2 = chainVariant({"front", "back", "front"});
    v2.nodes[0].onEnter.push_back(block);
    v2.nodes[2].onLeave.push_back(unblock);
    control.tree.addVariant(std::move(v2));
    control.finalize();
    control.issue(control.deployment.instance("front", 0), 1);
    control.issue(control.deployment.instance("front", 0), 2);
    control.sim.run();
    ASSERT_EQ(control.completions.size(), 2u);
    EXPECT_LT(control.completions[1].second,
              app.completions[1].second);
}

TEST(Dispatcher, MultipleVariantsSampled)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("fast", 1.0, 8));
    app.deployment.registerModel(tinyModel("slow", 1.0, 8));
    app.deployment.deployInstance("fast", "", {});
    app.deployment.deployInstance("slow", "", {});
    // Both variants share the same root service so either can be
    // issued to the same front-end; the second visits "slow" too.
    PathVariant v_fast = chainVariant({"fast"});
    v_fast.probability = 0.7;
    PathVariant v_slow = chainVariant({"fast", "slow"});
    v_slow.probability = 0.3;
    app.tree.addVariant(std::move(v_fast));
    app.tree.addVariant(std::move(v_slow));
    app.finalize();
    for (int i = 0; i < 3000; ++i)
        app.issue(app.deployment.instance("fast", 0), i % 64);
    app.sim.run();
    EXPECT_EQ(app.completions.size(), 3000u);
    const double slow_fraction =
        static_cast<double>(
            app.deployment.instance("slow", 0).completedJobs()) /
        3000.0;
    EXPECT_NEAR(slow_fraction, 0.3, 0.03);
}

TEST(Dispatcher, WrongFrontServiceThrows)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("a", 1.0));
    app.deployment.registerModel(tinyModel("b", 1.0));
    app.deployment.deployInstance("a", "", {});
    app.deployment.deployInstance("b", "", {});
    app.tree.addVariant(chainVariant({"a"}));
    app.finalize();
    JobPtr job = app.dispatcher->jobs().createRoot(0, 100);
    EXPECT_THROW(app.dispatcher->startRequest(
                     std::move(job),
                     app.deployment.instance("b", 0), 1),
                 std::logic_error);
}

TEST(Dispatcher, TierLatencyHookReportsSeconds)
{
    AppFixture app;
    app.deployment.registerModel(tinyModel("svc", 50.0));
    app.deployment.deployInstance("svc", "", {});
    app.tree.addVariant(chainVariant({"svc"}));
    app.finalize();
    double observed = -1.0;
    app.dispatcher->setTierLatencyHook(
        [&](std::uint32_t tier_id, double seconds) {
            EXPECT_EQ(app.deployment.names().name(tier_id), "svc");
            observed = seconds;
        });
    app.issue(app.deployment.instance("svc", 0), 1);
    app.sim.run();
    EXPECT_NEAR(observed, 50e-6, 1e-9);
}

}  // namespace
}  // namespace uqsim
