/**
 * @file
 * Acceptance tests for the fault-injection and resilience-policy
 * subsystem: crash semantics, retry/hedging tail cutting, bounded
 * queues with load shedding, determinism under faults, and HTTP/1.1
 * connection blocking across an injected crash.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "uqsim/core/app/dispatcher.h"
#include "uqsim/core/service/instance.h"
#include "uqsim/core/sim/simulation.h"
#include "uqsim/fault/fault_plan.h"
#include "uqsim/fault/resilience.h"
#include "uqsim/json/json_parser.h"
#include "uqsim/models/stage_presets.h"
#include "uqsim/runner/sweep_runner.h"

namespace uqsim {
namespace {

using json::JsonArray;
using json::JsonValue;

/** A one-stage "simple" service model. */
JsonValue
simpleService(const std::string& name, JsonValue dist_spec)
{
    JsonValue doc = JsonValue::makeObject();
    doc.asObject()["service_name"] = name;
    doc.asObject()["execution_model"] = "simple";
    JsonArray stages;
    stages.push_back(models::processingStage(0, "proc",
                                             std::move(dist_spec)));
    doc.asObject()["stages"] = JsonValue(std::move(stages));
    JsonArray paths;
    paths.push_back(models::pathJson(0, "serve", {0}));
    doc.asObject()["paths"] = JsonValue(std::move(paths));
    return doc;
}

/** machines.json with one front machine and @p leaves leaf machines,
 *  IRQ modeling off (pure queueing). */
JsonValue
machinesDoc(int leaves)
{
    std::string text =
        R"({"wire_latency_us": 5.0, "loopback_latency_us": 1.0,)"
        R"( "machines": [{"name": "front", "cores": 4, "irq_cores": 0})";
    for (int i = 0; i < leaves; ++i) {
        text += R"(, {"name": "leaf)" + std::to_string(i) +
                R"(", "cores": 2, "irq_cores": 0})";
    }
    text += "]}";
    return json::parse(text);
}

JsonValue
constantClient(const std::string& front, double qps, int connections,
               const std::string& extra = "")
{
    return json::parse(
        R"({"front_service": ")" + front + R"(", "connections": )" +
        std::to_string(connections) +
        R"(, "arrival": "poisson", "load": {"type": "constant",)"
        R"( "qps": )" + std::to_string(qps) +
        R"(}, "request_bytes": {"type": "deterministic",)"
        R"( "value": 128.0})" + extra + "}");
}

SimulationOptions
runOptions(std::uint64_t seed, double warmup, double duration)
{
    SimulationOptions options;
    options.seed = seed;
    options.warmupSeconds = warmup;
    options.durationSeconds = duration;
    return options;
}

// ------------------------------------------------- crash semantics (a)

/** Single service, single instance, scripted mid-run crash. */
ConfigBundle
crashBundle(std::uint64_t seed)
{
    ConfigBundle bundle;
    bundle.options = runOptions(seed, 0.1, 1.0);
    bundle.machines = machinesDoc(0);
    bundle.services.push_back(
        simpleService("svc", models::expUs(1000.0)));
    bundle.graph = json::parse(
        R"({"services": [{"service": "svc", "instances":)"
        R"( [{"machine": "front", "threads": 2}]}]})");
    bundle.paths = json::parse(
        R"({"paths": [{"probability": 1.0, "nodes": [{"node_id": 0,)"
        R"( "service": "svc", "path": "serve", "children": []}]}]})");
    bundle.client = constantClient("svc", 3000.0, 64);
    bundle.faults = json::parse(
        R"({"faults": [{"type": "crash", "instance": "svc.0",)"
        R"( "at_s": 0.4, "recover_s": 0.6}]})");
    return bundle;
}

TEST(FaultInjection, CrashFailsExactlyInflightJobsAndRecovers)
{
    auto simulation = Simulation::fromBundle(crashBundle(7));

    std::uint64_t completions_after_recovery = 0;
    simulation->setCompletionListener(
        [&](const Job& job, double) {
            if (simTimeToSeconds(job.created) >= 0.65)
                ++completions_after_recovery;
        });
    const RunReport report = simulation->run();

    Dispatcher& dispatcher = simulation->dispatcher();
    MicroserviceInstance& instance =
        simulation->deployment().instance("svc", 0);

    // The overloaded tier holds a queue at the crash instant, so the
    // crash must have killed in-flight work, and arrivals during the
    // 200 ms outage must have been refused.
    EXPECT_FALSE(instance.isDown());
    EXPECT_GT(instance.killedJobs(), 0u);
    EXPECT_GT(instance.refusedJobs(), 0u);

    // Conservation: every failed request is accounted for by exactly
    // one kill or refusal — nothing else fails in this scenario.
    EXPECT_EQ(dispatcher.requestsFailed(),
              instance.killedJobs() + instance.refusedJobs());
    EXPECT_EQ(dispatcher.requestsStarted(),
              dispatcher.requestsCompleted() +
                  dispatcher.requestsFailed() +
                  dispatcher.requestsShed() +
                  dispatcher.activeRequests());

    // Recovery restores throughput: requests issued well after the
    // recovery point complete again.
    EXPECT_GT(completions_after_recovery, 100u);
    EXPECT_EQ(report.crashes, 1u);
    EXPECT_GT(report.failed, 0u);
    EXPECT_LT(report.availability, 1.0);
    EXPECT_GT(report.availability, 0.5);
}

// ------------------------------------- retries and hedging cut p99 (b)

/**
 * Front tier fanning to a replicated leaf tier where one instance is
 * degraded 20x for the whole run.  @p policy is the front->leaf
 * edge policy JSON ("" = none).
 */
ConfigBundle
slowLeafBundle(std::uint64_t seed, const std::string& policy)
{
    ConfigBundle bundle;
    bundle.options = runOptions(seed, 0.25, 1.5);
    bundle.machines = machinesDoc(3);
    bundle.services.push_back(
        simpleService("front", models::detUs(5.0)));
    bundle.services.push_back(
        simpleService("leaf", models::expUs(100.0)));
    std::string graph =
        R"({"services": [{"service": "front", "connection_pools":)"
        R"( {"leaf": 64},)";
    if (!policy.empty())
        graph += R"( "policies": {"leaf": )" + policy + "},";
    graph +=
        R"( "instances": [{"machine": "front", "threads": 4}]},)"
        R"( {"service": "leaf", "lb_policy": "round_robin",)"
        R"( "instances": [{"machine": "leaf0", "threads": 2},)"
        R"( {"machine": "leaf1", "threads": 2},)"
        R"( {"machine": "leaf2", "threads": 2}]}]})";
    bundle.graph = json::parse(graph);
    bundle.paths = json::parse(
        R"({"paths": [{"probability": 1.0, "nodes":)"
        R"( [{"node_id": 0, "service": "front", "path": "serve",)"
        R"( "children": [1]},)"
        R"( {"node_id": 1, "service": "leaf", "path": "serve",)"
        R"( "children": [2]},)"
        R"( {"node_id": 2, "service": "front", "path": "serve",)"
        R"( "children": []}]}]})");
    bundle.client = constantClient("front", 600.0, 64);
    bundle.faults = json::parse(
        R"({"faults": [{"type": "slow", "instance": "leaf.0",)"
        R"( "start_s": 0.05, "end_s": 10.0, "factor": 20.0}]})");
    return bundle;
}

double
measuredP99(const std::string& policy)
{
    auto simulation = Simulation::fromBundle(slowLeafBundle(11, policy));
    simulation->run();
    return simulation->latencies().p99();
}

TEST(ResiliencePolicies, RetriesAndHedgingCutTailUnderSlowNode)
{
    const double no_policy = measuredP99("");
    const double with_retries = measuredP99(
        R"({"timeout_s": 0.002, "retries": 2,)"
        R"( "backoff_base_s": 0.0002, "jitter": 0.2})");
    const double with_hedging = measuredP99(
        R"({"timeout_s": 0.02, "retries": 1,)"
        R"( "hedge_delay_s": 0.001, "hedge_max": 1})");

    // One 20x-slow replica out of three puts roughly a third of the
    // requests on a ~2 ms-mean exponential: the unmitigated p99 is
    // several milliseconds.  Timed-out retries and 1 ms hedges both
    // re-issue to a healthy replica.
    EXPECT_GT(no_policy, 0.004);
    EXPECT_LT(with_retries, no_policy * 0.7);
    EXPECT_LT(with_hedging, no_policy * 0.7);
}

TEST(ResiliencePolicies, PolicyRunsReportMitigationCounters)
{
    auto simulation = Simulation::fromBundle(slowLeafBundle(
        11, R"({"timeout_s": 0.002, "retries": 2})"));
    const RunReport report = simulation->run();
    EXPECT_GT(report.retries, 0u);
    const auto it = report.tierFaults.find("front");
    ASSERT_NE(it, report.tierFaults.end());
    EXPECT_GT(it->second.hopTimeouts, 0u);
    EXPECT_GT(it->second.retries, 0u);
}

// ------------------------------- bounded queues and load shedding (c)

/** Deterministic 1 ms service on one thread (1 kQPS capacity),
 *  offered 4 kQPS.  Unbounded, the queue — and with it the tail —
 *  would grow for the whole run. */
ConfigBundle
overloadBundle(const std::string& service_json)
{
    ConfigBundle bundle;
    bundle.options = runOptions(3, 0.2, 1.0);
    bundle.machines = machinesDoc(0);
    bundle.services.push_back(
        simpleService("svc", models::detUs(1000.0)));
    bundle.graph = json::parse(
        R"({"services": [{"service": "svc",)" + service_json + "]}");
    bundle.paths = json::parse(
        R"({"paths": [{"probability": 1.0, "nodes": [{"node_id": 0,)"
        R"( "service": "svc", "path": "serve", "children": []}]}]})");
    bundle.client = constantClient("svc", 4000.0, 256);
    return bundle;
}

TEST(GracefulDegradation, BoundedQueueKeepsTailFiniteAndCountsRejects)
{
    auto simulation = Simulation::fromBundle(overloadBundle(
        R"("instances": [{"machine": "front", "threads": 1,)"
        R"( "queue_capacity": 32}]})"));
    const RunReport report = simulation->run();
    Dispatcher& dispatcher = simulation->dispatcher();
    MicroserviceInstance& instance =
        simulation->deployment().instance("svc", 0);

    // The tail of *completed* requests is bounded by the queue bound
    // (~33 service times), far below the >500 ms an unbounded queue
    // would reach by the end of the run.
    EXPECT_GT(simulation->latencies().count(), 100u);
    EXPECT_LT(simulation->latencies().p99(), 0.060);

    // Every rejection is accounted: queue-full drops inside the tier
    // cover all failed requests, one for one.
    EXPECT_GT(instance.rejectedJobs(), 1000u);
    const auto tier_faults = dispatcher.tierFaults();
    const auto it = tier_faults.find("svc");
    ASSERT_NE(it, tier_faults.end());
    EXPECT_EQ(it->second.rejected, instance.rejectedJobs());
    EXPECT_EQ(dispatcher.requestsFailed(), instance.rejectedJobs());
    EXPECT_EQ(dispatcher.requestsStarted(),
              dispatcher.requestsCompleted() +
                  dispatcher.requestsFailed() +
                  dispatcher.requestsShed() +
                  dispatcher.activeRequests());
    EXPECT_GT(report.failed, 0u);
}

TEST(GracefulDegradation, AdmissionControlShedsAtEntryTier)
{
    // The admission limit is below what the (bounded) queue could
    // hold, so the door turns requests away before the queue fills.
    auto simulation = Simulation::fromBundle(overloadBundle(
        R"("admission": {"max_inflight": 24},)"
        R"( "instances": [{"machine": "front", "threads": 1,)"
        R"( "queue_capacity": 64}]})"));
    const RunReport report = simulation->run();
    Dispatcher& dispatcher = simulation->dispatcher();
    MicroserviceInstance& instance =
        simulation->deployment().instance("svc", 0);

    EXPECT_GT(simulation->latencies().count(), 100u);
    EXPECT_LT(simulation->latencies().p99(), 0.060);

    // Shedding, not queue rejection, absorbs the overload here, and
    // the shed counter accounts for every turned-away request.
    EXPECT_GT(dispatcher.requestsShed(), 1000u);
    EXPECT_EQ(instance.rejectedJobs(), 0u);
    const auto tier_faults = dispatcher.tierFaults();
    const auto it = tier_faults.find("svc");
    ASSERT_NE(it, tier_faults.end());
    EXPECT_EQ(it->second.shed, dispatcher.requestsShed());
    EXPECT_EQ(dispatcher.requestsStarted(),
              dispatcher.requestsCompleted() +
                  dispatcher.requestsFailed() +
                  dispatcher.requestsShed() +
                  dispatcher.activeRequests());
    EXPECT_EQ(report.shed, dispatcher.requestsShed());
}

// --------------------------------------- determinism under faults (d)

/** Everything at once: slow node, stochastic crashes, a lossy
 *  network window, retries+hedging+breaker, admission control. */
ConfigBundle
chaosBundle(std::uint64_t seed)
{
    ConfigBundle bundle = slowLeafBundle(
        seed,
        R"({"timeout_s": 0.002, "retries": 2,)"
        R"( "backoff_base_s": 0.0002, "jitter": 0.3,)"
        R"( "hedge_delay_s": 0.0015, "hedge_max": 1,)"
        R"( "breaker": {"window": 20, "failure_ratio": 0.6,)"
        R"( "min_samples": 10, "open_s": 0.05}})");
    bundle.faults = json::parse(
        R"({"faults": [)"
        R"( {"type": "slow", "instance": "leaf.0", "start_s": 0.05,)"
        R"(  "end_s": 10.0, "factor": 20.0},)"
        R"( {"type": "crash", "service": "leaf", "mtbf_s": 0.3,)"
        R"(  "mttr_s": 0.05},)"
        R"( {"type": "network", "start_s": 0.5, "end_s": 0.9,)"
        R"(  "extra_latency_us": 200.0, "loss_prob": 0.02}]})");
    return bundle;
}

TEST(FaultDeterminism, SameSeedIsBitwiseIdenticalAcrossJobs)
{
    runner::RunnerOptions serial;
    serial.jobs = 1;
    serial.replications = 3;
    serial.baseSeed = 99;
    runner::RunnerOptions parallel = serial;
    parallel.jobs = 4;

    const auto factory = [](double, std::uint64_t seed) {
        return Simulation::fromBundle(chaosBundle(seed));
    };
    const runner::ReplicatedPoint a =
        runner::runReplicated(factory, 0.0, serial);
    const runner::ReplicatedPoint b =
        runner::runReplicated(factory, 0.0, parallel);

    ASSERT_EQ(a.replications.size(), b.replications.size());
    for (std::size_t i = 0; i < a.replications.size(); ++i) {
        EXPECT_EQ(a.replications[i].traceDigest,
                  b.replications[i].traceDigest)
            << "replication " << i
            << " diverged between --jobs 1 and --jobs 4";
        EXPECT_EQ(a.replications[i].report.completed,
                  b.replications[i].report.completed);
        EXPECT_EQ(a.replications[i].report.failed,
                  b.replications[i].report.failed);
    }
    // The chaos plan actually exercised the fault machinery.
    EXPECT_GT(a.replications.front().report.crashes +
                  a.replications.front().report.netDropped +
                  a.replications.front().report.retries,
              0u);
}

TEST(FaultDeterminism, EmptyFaultPlanMatchesAbsentPlan)
{
    // An explicitly empty faults.json and no faults.json at all must
    // be indistinguishable: the fault machinery adds no events and
    // draws no random numbers unless something is actually injected.
    ConfigBundle with_empty = slowLeafBundle(5, "");
    with_empty.faults = json::parse(R"({"faults": []})");
    ConfigBundle absent = slowLeafBundle(5, "");
    absent.faults = JsonValue();

    auto a = Simulation::fromBundle(with_empty);
    auto b = Simulation::fromBundle(absent);
    const RunReport ra = a->run();
    const RunReport rb = b->run();
    EXPECT_EQ(a->sim().traceDigest(), b->sim().traceDigest());
    EXPECT_EQ(ra.completed, rb.completed);
}

// ------------------------- HTTP/1.1 blocking across a crash (e)

TEST(FaultInjection, ConnectionBlockingSurvivesBackendCrash)
{
    // Front blocks the client connection HTTP/1.1-style until the
    // backend responds.  Crashing the backend kills in-flight jobs;
    // every failed request must still unblock its connection or the
    // front wedges permanently.
    ConfigBundle bundle;
    bundle.options = runOptions(13, 0.1, 1.2);
    bundle.machines = machinesDoc(1);
    bundle.services.push_back(
        simpleService("front", models::detUs(50.0)));
    bundle.services.push_back(
        simpleService("back", models::expUs(200.0)));
    bundle.graph = json::parse(
        R"({"services": [{"service": "front", "connection_pools":)"
        R"( {"back": 8},)"
        R"( "instances": [{"machine": "front", "threads": 2}]},)"
        R"( {"service": "back",)"
        R"( "instances": [{"machine": "leaf0", "threads": 2}]}]})");
    bundle.paths = json::parse(
        R"({"paths": [{"probability": 1.0, "nodes":)"
        R"( [{"node_id": 0, "service": "front", "path": "serve",)"
        R"( "children": [1], "on_enter": [{"op": "block_connection"}]},)"
        R"( {"node_id": 1, "service": "back", "path": "serve",)"
        R"( "children": [2]},)"
        R"( {"node_id": 2, "service": "front", "path": "serve",)"
        R"( "children": [], "on_leave": [{"op": "unblock_connection",)"
        R"( "service": "front"}]}]}]})");
    bundle.client =
        constantClient("front", 1000.0, 32, R"(, "stop_s": 0.8)");
    bundle.faults = json::parse(
        R"({"faults": [{"type": "crash", "instance": "back.0",)"
        R"( "at_s": 0.4, "recover_s": 0.5}]})");

    std::uint64_t completions_after_recovery = 0;
    auto simulation = Simulation::fromBundle(bundle);
    simulation->setCompletionListener(
        [&](const Job& job, double) {
            if (simTimeToSeconds(job.created) >= 0.55)
                ++completions_after_recovery;
        });
    simulation->run();
    Dispatcher& dispatcher = simulation->dispatcher();

    EXPECT_GT(dispatcher.requestsFailed(), 0u);
    EXPECT_GT(completions_after_recovery, 100u);
    // The client stopped at 0.8 s and the run drained to 1.2 s: no
    // request may still hold a block or a pooled connection.
    EXPECT_EQ(dispatcher.activeRequests(), 0u);
    EXPECT_EQ(dispatcher.blocks().totalPending(), 0u);
}

// ------------------------------------------------ config validation

TEST(FaultConfig, RejectsUnknownAndMalformedSpecs)
{
    EXPECT_THROW(
        fault::FaultPlan::fromJson(json::parse(
            R"({"faults": [{"type": "chrash", "instance": "a.0",)"
            R"( "at_s": 1.0, "recover_s": 2.0}]})")),
        json::JsonError);
    // Unknown key inside a spec.
    EXPECT_THROW(
        fault::FaultPlan::fromJson(json::parse(
            R"({"faults": [{"type": "crash", "instance": "a.0",)"
            R"( "at_s": 1.0, "recovers_s": 2.0}]})")),
        json::JsonError);
    // Crash needs exactly one of instance/service.
    EXPECT_THROW(
        fault::FaultPlan::fromJson(json::parse(
            R"({"faults": [{"type": "crash", "at_s": 1.0,)"
            R"( "recover_s": 2.0}]})")),
        json::JsonError);
    // Loss probability out of range.
    EXPECT_THROW(
        fault::FaultPlan::fromJson(json::parse(
            R"({"faults": [{"type": "network", "start_s": 0.1,)"
            R"( "end_s": 0.2, "loss_prob": 1.5}]})")),
        json::JsonError);
}

TEST(FaultConfig, PolicyValidation)
{
    // Retries without a timeout are meaningless.
    EXPECT_THROW(fault::EdgePolicy::fromJson(
                     json::parse(R"({"retries": 2})")),
                 json::JsonError);
    // Unknown policy key gets a did-you-mean.
    try {
        fault::EdgePolicy::fromJson(
            json::parse(R"({"timeout_ms": 5})"));
        FAIL() << "expected JsonError";
    } catch (const json::JsonError& error) {
        EXPECT_NE(std::string(error.what()).find("timeout_s"),
                  std::string::npos);
    }
}

}  // namespace
}  // namespace uqsim
