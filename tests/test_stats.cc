/**
 * @file
 * Unit tests for the statistics substrate.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "uqsim/random/rng.h"
#include "uqsim/stats/confidence.h"
#include "uqsim/stats/latency_histogram.h"
#include "uqsim/stats/percentile_recorder.h"
#include "uqsim/stats/summary.h"
#include "uqsim/stats/throughput_meter.h"
#include "uqsim/stats/time_series.h"
#include "uqsim/stats/windowed_tail_tracker.h"

namespace uqsim {
namespace stats {
namespace {

// -------------------------------------------------------------- Summary

TEST(Summary, EmptyIsZero)
{
    Summary summary;
    EXPECT_EQ(summary.count(), 0u);
    EXPECT_DOUBLE_EQ(summary.mean(), 0.0);
    EXPECT_DOUBLE_EQ(summary.variance(), 0.0);
    EXPECT_DOUBLE_EQ(summary.min(), 0.0);
    EXPECT_DOUBLE_EQ(summary.max(), 0.0);
}

TEST(Summary, BasicMoments)
{
    Summary summary;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        summary.add(v);
    EXPECT_EQ(summary.count(), 8u);
    EXPECT_DOUBLE_EQ(summary.mean(), 5.0);
    EXPECT_NEAR(summary.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(summary.min(), 2.0);
    EXPECT_DOUBLE_EQ(summary.max(), 9.0);
    EXPECT_DOUBLE_EQ(summary.sum(), 40.0);
}

TEST(Summary, SingleValueHasZeroVariance)
{
    Summary summary;
    summary.add(3.0);
    EXPECT_DOUBLE_EQ(summary.variance(), 0.0);
    EXPECT_DOUBLE_EQ(summary.stddev(), 0.0);
}

TEST(Summary, MergeMatchesCombinedStream)
{
    random::Rng rng(5);
    Summary all, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.nextDouble() * 10.0;
        all.add(v);
        (i % 2 == 0 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmpty)
{
    Summary a, b;
    a.add(1.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    b.merge(a);
    EXPECT_EQ(b.count(), 1u);
    EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(Summary, ResetClears)
{
    Summary summary;
    summary.add(5.0);
    summary.reset();
    EXPECT_EQ(summary.count(), 0u);
}

// -------------------------------------------------- PercentileRecorder

TEST(PercentileRecorder, EmptyReturnsZero)
{
    PercentileRecorder recorder;
    EXPECT_DOUBLE_EQ(recorder.percentile(99.0), 0.0);
    EXPECT_TRUE(recorder.empty());
}

TEST(PercentileRecorder, ExactOrderStatistics)
{
    PercentileRecorder recorder;
    for (int i = 100; i >= 1; --i)  // insertion order irrelevant
        recorder.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(recorder.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(recorder.percentile(100.0), 100.0);
    // Type-7 interpolation: p50 of 1..100 is 50.5.
    EXPECT_DOUBLE_EQ(recorder.p50(), 50.5);
    EXPECT_NEAR(recorder.p99(), 99.01, 1e-9);
    EXPECT_DOUBLE_EQ(recorder.mean(), 50.5);
}

TEST(PercentileRecorder, InterpolatesBetweenRanks)
{
    PercentileRecorder recorder;
    recorder.add(0.0);
    recorder.add(10.0);
    EXPECT_DOUBLE_EQ(recorder.percentile(50.0), 5.0);
    EXPECT_DOUBLE_EQ(recorder.percentile(25.0), 2.5);
}

TEST(PercentileRecorder, PercentileClamped)
{
    PercentileRecorder recorder;
    recorder.add(1.0);
    recorder.add(2.0);
    EXPECT_DOUBLE_EQ(recorder.percentile(-5.0), 1.0);
    EXPECT_DOUBLE_EQ(recorder.percentile(150.0), 2.0);
}

TEST(PercentileRecorder, CacheInvalidatedByAdd)
{
    PercentileRecorder recorder;
    recorder.add(1.0);
    EXPECT_DOUBLE_EQ(recorder.p99(), 1.0);
    recorder.add(100.0);
    EXPECT_GT(recorder.p99(), 90.0);
}

TEST(PercentileRecorder, ResetClears)
{
    PercentileRecorder recorder;
    recorder.add(5.0);
    recorder.reset();
    EXPECT_TRUE(recorder.empty());
    EXPECT_DOUBLE_EQ(recorder.p99(), 0.0);
}

TEST(PercentileRecorder, ExponentialTailMatchesTheory)
{
    // p99 of exp(mean) = mean * ln(100).
    random::Rng rng(123);
    random::Rng rng2(123);
    PercentileRecorder recorder;
    for (int i = 0; i < 200000; ++i)
        recorder.add(-std::log(1.0 - rng.nextDouble()));
    (void)rng2;
    EXPECT_NEAR(recorder.p99(), std::log(100.0), 0.1);
    EXPECT_NEAR(recorder.p50(), std::log(2.0), 0.02);
}

// ---------------------------------------------------- LatencyHistogram

TEST(LatencyHistogram, CountsAndMean)
{
    LatencyHistogram hist(1e-6, 7);
    hist.add(1e-3);
    hist.addN(2e-3, 3);
    EXPECT_EQ(hist.count(), 4u);
    EXPECT_NEAR(hist.mean(), (1e-3 + 3 * 2e-3) / 4.0, 1e-12);
    EXPECT_NEAR(hist.max(), 2e-3, 1e-12);
    EXPECT_NEAR(hist.min(), 1e-3, 1e-12);
}

TEST(LatencyHistogram, BoundedRelativeError)
{
    LatencyHistogram hist(1e-9, 7);
    random::Rng rng(55);
    PercentileRecorder exact;
    for (int i = 0; i < 100000; ++i) {
        const double v = rng.nextDouble() * 1e-2;
        hist.add(v);
        exact.add(v);
    }
    for (double p : {50.0, 90.0, 99.0, 99.9}) {
        const double approx = hist.percentile(p);
        const double truth = exact.percentile(p);
        EXPECT_NEAR(approx, truth, truth * 0.02 + 1e-9)
            << "at percentile " << p;
    }
}

TEST(LatencyHistogram, MergeAddsCounts)
{
    LatencyHistogram a(1e-6, 7), b(1e-6, 7);
    a.add(1e-3);
    b.add(5e-3);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_NEAR(a.max(), 5e-3, 1e-12);
}

TEST(LatencyHistogram, MergeMismatchThrows)
{
    LatencyHistogram a(1e-6, 7), b(1e-6, 8);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(LatencyHistogram, NegativeClampedToZero)
{
    LatencyHistogram hist;
    hist.add(-1.0);
    EXPECT_EQ(hist.count(), 1u);
    EXPECT_DOUBLE_EQ(hist.min(), 0.0);
}

TEST(LatencyHistogram, EmptyPercentileIsZero)
{
    LatencyHistogram hist;
    EXPECT_DOUBLE_EQ(hist.percentile(99.0), 0.0);
}

TEST(LatencyHistogram, InvalidParamsThrow)
{
    EXPECT_THROW(LatencyHistogram(0.0, 7), std::invalid_argument);
    EXPECT_THROW(LatencyHistogram(1e-6, 0), std::invalid_argument);
    EXPECT_THROW(LatencyHistogram(1e-6, 30), std::invalid_argument);
}

TEST(LatencyHistogram, PercentileStaysWithinObservedRange)
{
    // Bucket midpoints can overshoot the recorded maximum (or
    // undershoot the minimum); percentiles must clamp to the
    // observed [min, max] range.
    LatencyHistogram hist(1e-6, 2);  // coarse buckets: wide midpoints
    hist.add(1.000e-3);
    hist.add(1.001e-3);
    hist.add(1.002e-3);
    for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.99}) {
        EXPECT_GE(hist.percentile(p), hist.min())
            << "at percentile " << p;
        EXPECT_LE(hist.percentile(p), hist.max())
            << "at percentile " << p;
    }
}

TEST(LatencyHistogram, P100ReturnsExactMax)
{
    LatencyHistogram hist(1e-6, 7);
    hist.add(1.0e-3);
    hist.add(7.7777e-3);
    EXPECT_DOUBLE_EQ(hist.percentile(100.0), hist.max());
    EXPECT_DOUBLE_EQ(hist.percentile(100.0), 7.7777e-3);
    // Out-of-range p clamps into [0, 100] first.
    EXPECT_DOUBLE_EQ(hist.percentile(250.0), 7.7777e-3);
}

TEST(LatencyHistogram, NonFiniteAndHugeValuesAreClamped)
{
    LatencyHistogram hist(1e-6, 7);
    hist.add(1e-3);
    hist.add(std::numeric_limits<double>::infinity());
    hist.addN(std::numeric_limits<double>::max(), 2);
    hist.add(std::numeric_limits<double>::quiet_NaN());  // counts as 0
    hist.add(-std::numeric_limits<double>::infinity());  // clamps to 0
    EXPECT_EQ(hist.count(), 6u);
    EXPECT_EQ(hist.clampedSamples(), 3u);
    // The recorded max is the finite ceiling, never inf/NaN.
    EXPECT_TRUE(std::isfinite(hist.max()));
    EXPECT_TRUE(std::isfinite(hist.mean()));
    EXPECT_TRUE(std::isfinite(hist.percentile(99.0)));
    EXPECT_DOUBLE_EQ(hist.min(), 0.0);

    LatencyHistogram other(1e-6, 7);
    other.add(std::numeric_limits<double>::infinity());
    hist.merge(other);
    EXPECT_EQ(hist.clampedSamples(), 4u);
    hist.reset();
    EXPECT_EQ(hist.clampedSamples(), 0u);
}

// ------------------------------------------------- WindowedTailTracker

TEST(WindowedTailTracker, CloseComputesAndResets)
{
    WindowedTailTracker tracker;
    for (int i = 1; i <= 100; ++i)
        tracker.add(static_cast<double>(i));
    EXPECT_EQ(tracker.pending(), 100u);
    const WindowStats stats = tracker.close();
    EXPECT_EQ(stats.count, 100u);
    EXPECT_DOUBLE_EQ(stats.mean, 50.5);
    EXPECT_DOUBLE_EQ(stats.p50, 50.5);
    EXPECT_NEAR(stats.p99, 99.01, 1e-9);
    EXPECT_DOUBLE_EQ(stats.max, 100.0);
    EXPECT_EQ(tracker.pending(), 0u);
    const WindowStats empty = tracker.close();
    EXPECT_EQ(empty.count, 0u);
    EXPECT_DOUBLE_EQ(empty.p99, 0.0);
}

TEST(WindowedTailTracker, PeekDoesNotReset)
{
    WindowedTailTracker tracker;
    tracker.add(1.0);
    tracker.add(3.0);
    const WindowStats peeked = tracker.peek();
    EXPECT_EQ(peeked.count, 2u);
    EXPECT_DOUBLE_EQ(peeked.mean, 2.0);
    EXPECT_EQ(tracker.pending(), 2u);
}

// ------------------------------------------------------------ TimeSeries

TEST(TimeSeries, ValueAtZeroOrderHold)
{
    TimeSeries series("freq");
    series.add(1.0, 2.6);
    series.add(5.0, 1.2);
    EXPECT_DOUBLE_EQ(series.valueAt(0.5, -1.0), -1.0);
    EXPECT_DOUBLE_EQ(series.valueAt(1.0), 2.6);
    EXPECT_DOUBLE_EQ(series.valueAt(4.999), 2.6);
    EXPECT_DOUBLE_EQ(series.valueAt(5.0), 1.2);
    EXPECT_DOUBLE_EQ(series.valueAt(100.0), 1.2);
    EXPECT_DOUBLE_EQ(series.lastValue(), 1.2);
}

TEST(TimeSeries, MeanOverWindow)
{
    TimeSeries series;
    series.add(0.0, 1.0);
    series.add(1.0, 2.0);
    series.add(2.0, 3.0);
    EXPECT_DOUBLE_EQ(series.meanOver(0.0, 2.0), 1.5);
    EXPECT_DOUBLE_EQ(series.meanOver(0.0, 3.0), 2.0);
    EXPECT_DOUBLE_EQ(series.meanOver(5.0, 6.0), 0.0);
}

TEST(TimeSeries, TextRendering)
{
    TimeSeries series;
    series.add(1.5, 2.5);
    EXPECT_EQ(series.toText(), "1.5 2.5\n");
}

// -------------------------------------------------------- ThroughputMeter

TEST(ThroughputMeter, OverallRate)
{
    ThroughputMeter meter;
    for (int i = 0; i <= 100; ++i)
        meter.record(static_cast<double>(i) * 0.01);
    EXPECT_EQ(meter.count(), 101u);
    EXPECT_NEAR(meter.overallRate(), 100.0, 1e-9);
}

TEST(ThroughputMeter, SingleEventHasNoRate)
{
    ThroughputMeter meter;
    meter.record(1.0);
    EXPECT_DOUBLE_EQ(meter.overallRate(), 0.0);
}

TEST(ThroughputMeter, BucketedRates)
{
    ThroughputMeter meter(1.0);
    for (int i = 0; i < 10; ++i)
        meter.record(0.05 * i);  // 10 events in bucket 0
    meter.record(1.5);           // 1 event in bucket 1
    const auto& rates = meter.bucketRates();
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_DOUBLE_EQ(rates[0], 10.0);
    EXPECT_DOUBLE_EQ(rates[1], 1.0);
    EXPECT_NEAR(meter.rateOver(0.0, 2.0), 5.5, 1e-9);
}

TEST(ThroughputMeter, NegativeBucketWidthThrows)
{
    EXPECT_THROW(ThroughputMeter(-1.0), std::invalid_argument);
}

// ------------------------------------------- mergeable statistics

TEST(Summary, MergeIsAssociative)
{
    random::Rng rng(17);
    Summary a, b, c;
    for (int i = 0; i < 300; ++i) {
        a.add(rng.nextGaussian());
        b.add(rng.nextGaussian() * 3.0 + 1.0);
        c.add(rng.nextDouble());
    }
    Summary left_first = a;
    left_first.merge(b);
    left_first.merge(c);
    Summary right_first = b;
    right_first.merge(c);
    Summary a_then_rest = a;
    a_then_rest.merge(right_first);
    EXPECT_EQ(left_first.count(), a_then_rest.count());
    EXPECT_NEAR(left_first.mean(), a_then_rest.mean(), 1e-12);
    EXPECT_NEAR(left_first.variance(), a_then_rest.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left_first.min(), a_then_rest.min());
    EXPECT_DOUBLE_EQ(left_first.max(), a_then_rest.max());
}

TEST(PercentileRecorder, MergeOfPartsEqualsSingleStream)
{
    random::Rng rng(23);
    PercentileRecorder all, left, right;
    for (int i = 0; i < 2000; ++i) {
        const double v = rng.nextDouble() * 5.0;
        all.add(v);
        (i % 3 == 0 ? left : right).add(v);
    }
    left.merge(right);
    ASSERT_EQ(left.count(), all.count());
    // Percentiles sort, so they are bitwise independent of the
    // recording order of the pooled stream.
    for (double p : {0.0, 25.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_EQ(left.percentile(p), all.percentile(p));
    EXPECT_EQ(left.min(), all.min());
    EXPECT_EQ(left.max(), all.max());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
}

TEST(PercentileRecorder, MergeEmptyIsIdentity)
{
    PercentileRecorder recorder, empty;
    recorder.add(1.0);
    recorder.add(2.0);
    recorder.merge(empty);
    EXPECT_EQ(recorder.count(), 2u);
    EXPECT_EQ(recorder.p50(), 1.5);

    empty.merge(recorder);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_EQ(empty.p50(), 1.5);

    PercentileRecorder blank, other_blank;
    blank.merge(other_blank);
    EXPECT_EQ(blank.count(), 0u);
    EXPECT_EQ(blank.percentile(50.0), 0.0);
}

TEST(PercentileRecorder, MergeIsAssociative)
{
    random::Rng rng(29);
    PercentileRecorder a, b, c;
    for (int i = 0; i < 500; ++i) {
        a.add(rng.nextDouble());
        b.add(rng.nextDouble() * 2.0);
        c.add(rng.nextDouble() * 0.5);
    }
    PercentileRecorder ab_c = a;
    ab_c.merge(b);
    ab_c.merge(c);
    PercentileRecorder bc = b;
    bc.merge(c);
    PercentileRecorder a_bc = a;
    a_bc.merge(bc);
    ASSERT_EQ(ab_c.count(), a_bc.count());
    for (double p : {10.0, 50.0, 90.0, 99.0})
        EXPECT_EQ(ab_c.percentile(p), a_bc.percentile(p));
}

TEST(PercentileRecorder, SelfMergeDoublesObservations)
{
    PercentileRecorder recorder;
    recorder.add(1.0);
    recorder.add(3.0);
    recorder.merge(recorder);
    EXPECT_EQ(recorder.count(), 4u);
    EXPECT_DOUBLE_EQ(recorder.mean(), 2.0);
}

TEST(PercentileRecorder, MergeInvalidatesCachedSort)
{
    PercentileRecorder a, b;
    a.add(1.0);
    EXPECT_DOUBLE_EQ(a.p50(), 1.0);  // caches the sorted order
    b.add(3.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.p50(), 2.0);
}

TEST(LatencyHistogram, MergeOfPartsEqualsSingleStream)
{
    random::Rng rng(31);
    LatencyHistogram all(1e-6, 7), left(1e-6, 7), right(1e-6, 7);
    for (int i = 0; i < 3000; ++i) {
        const double v = rng.nextDouble() * 1e-2;
        all.add(v);
        (i % 2 == 0 ? left : right).add(v);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_EQ(left.percentile(50.0), all.percentile(50.0));
    EXPECT_EQ(left.percentile(99.0), all.percentile(99.0));
    EXPECT_EQ(left.max(), all.max());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
}

TEST(LatencyHistogram, MergeEmptyIsIdentity)
{
    LatencyHistogram histogram, empty;
    histogram.add(0.5);
    histogram.merge(empty);
    EXPECT_EQ(histogram.count(), 1u);
    empty.merge(histogram);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_EQ(empty.percentile(50.0), histogram.percentile(50.0));
}

TEST(LatencyHistogram, MergeIsAssociative)
{
    random::Rng rng(37);
    LatencyHistogram a, b, c;
    for (int i = 0; i < 1000; ++i) {
        a.add(rng.nextDouble() * 1e-3);
        b.add(rng.nextDouble() * 1e-2);
        c.add(rng.nextDouble() * 1e-1);
    }
    LatencyHistogram ab_c = a;
    ab_c.merge(b);
    ab_c.merge(c);
    LatencyHistogram bc = b;
    bc.merge(c);
    LatencyHistogram a_bc = a;
    a_bc.merge(bc);
    EXPECT_EQ(ab_c.count(), a_bc.count());
    for (double p : {10.0, 50.0, 90.0, 99.0})
        EXPECT_EQ(ab_c.percentile(p), a_bc.percentile(p));
    EXPECT_NEAR(ab_c.mean(), a_bc.mean(), 1e-15);
}

// ------------------------------------------- confidence intervals

TEST(Confidence, NormalQuantileMatchesTables)
{
    EXPECT_NEAR(normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(normalQuantile(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(normalQuantile(0.995), 2.575829, 1e-5);
    EXPECT_NEAR(normalQuantile(0.025), -1.959964, 1e-5);
    EXPECT_NEAR(normalQuantile(0.9999), 3.719016, 1e-4);
    EXPECT_THROW(normalQuantile(0.0), std::invalid_argument);
    EXPECT_THROW(normalQuantile(1.0), std::invalid_argument);
}

TEST(Confidence, TQuantileMatchesTables)
{
    // Standard two-sided 95% critical values t_{0.975, dof}.
    EXPECT_NEAR(tQuantile(0.975, 1), 12.7062, 1e-3);
    EXPECT_NEAR(tQuantile(0.975, 2), 4.30265, 1e-4);
    EXPECT_NEAR(tQuantile(0.975, 5), 2.57058, 2e-3);
    EXPECT_NEAR(tQuantile(0.975, 10), 2.22814, 1e-3);
    EXPECT_NEAR(tQuantile(0.975, 30), 2.04227, 1e-3);
    // Converges to the normal quantile for large dof.
    EXPECT_NEAR(tQuantile(0.975, 10000), normalQuantile(0.975), 1e-3);
    // Symmetry.
    EXPECT_NEAR(tQuantile(0.1, 7), -tQuantile(0.9, 7), 1e-9);
    EXPECT_THROW(tQuantile(0.975, 0), std::invalid_argument);
}

TEST(Confidence, MeanIntervalMatchesHandComputation)
{
    Summary summary;
    for (double v : {4.0, 6.0, 8.0, 10.0})
        summary.add(v);
    // mean 7, sd sqrt(20/3), n 4, t_{0.975,3} = 3.18245.  The Hill
    // t-quantile expansion is good to ~0.2% at dof=3, so allow a
    // proportional tolerance rather than an absolute epsilon.
    const ConfidenceInterval ci =
        meanConfidenceInterval(summary, 0.95);
    EXPECT_TRUE(ci.valid());
    EXPECT_DOUBLE_EQ(ci.mean, 7.0);
    const double expected_hw =
        3.18245 * std::sqrt(20.0 / 3.0) / 2.0;
    EXPECT_NEAR(ci.halfWidth, expected_hw, 0.003 * expected_hw);
    EXPECT_NEAR(ci.lo(), 7.0 - expected_hw, 0.003 * expected_hw);
    EXPECT_NEAR(ci.hi(), 7.0 + expected_hw, 0.003 * expected_hw);
}

TEST(Confidence, DegenerateCountsAreInvalid)
{
    Summary empty;
    EXPECT_FALSE(meanConfidenceInterval(empty).valid());
    Summary one;
    one.add(3.0);
    const ConfidenceInterval ci = meanConfidenceInterval(one);
    EXPECT_FALSE(ci.valid());
    EXPECT_DOUBLE_EQ(ci.mean, 3.0);
    EXPECT_DOUBLE_EQ(ci.halfWidth, 0.0);
    EXPECT_THROW(meanConfidenceInterval(one, 1.5),
                 std::invalid_argument);
}

TEST(Confidence, IntervalCoversTrueMean)
{
    // Frequentist sanity: across many replications of a known
    // process, the 95% interval should cover the true mean roughly
    // 95% of the time (allow a wide band; 400 trials).
    random::Rng rng(41);
    int covered = 0;
    const int trials = 400;
    for (int t = 0; t < trials; ++t) {
        Summary summary;
        for (int i = 0; i < 10; ++i)
            summary.add(rng.nextGaussian() * 2.0 + 5.0);
        const ConfidenceInterval ci =
            meanConfidenceInterval(summary, 0.95);
        if (ci.lo() <= 5.0 && 5.0 <= ci.hi())
            ++covered;
    }
    const double coverage = static_cast<double>(covered) / trials;
    EXPECT_GT(coverage, 0.90);
    EXPECT_LT(coverage, 0.99);
}

TEST(Confidence, DescribeRendersInterval)
{
    Summary summary;
    summary.add(1.0);
    summary.add(3.0);
    const std::string text =
        meanConfidenceInterval(summary, 0.95).describe();
    EXPECT_NE(text.find("±"), std::string::npos);
    EXPECT_NE(text.find("95% CI"), std::string::npos);
    EXPECT_NE(text.find("n=2"), std::string::npos);
}

}  // namespace
}  // namespace stats
}  // namespace uqsim
