/**
 * @file
 * Behavioral tests of MicroserviceInstance: stage traversal,
 * batching amortization, worker/ core occupancy, disk blocking,
 * context switching, scheduling policies, and path sampling.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "uqsim/core/service/instance.h"
#include "uqsim/random/distributions.h"

namespace uqsim {
namespace {

StageConfig
makeStage(int id, const char* name, QueueType type, bool batching,
          int limit, double base_us, double per_job_us = 0.0,
          StageResource resource = StageResource::Cpu)
{
    StageConfig stage;
    stage.id = id;
    stage.name = name;
    stage.queueType = type;
    stage.batching = batching;
    stage.batchLimit = limit;
    stage.time = ServiceTimeModel(
        std::make_shared<random::DeterministicDistribution>(base_us *
                                                            1e-6),
        per_job_us * 1e-6);
    stage.resource = resource;
    return stage;
}

/** epoll(2us + 1us/job, N=8) -> proc(10us) -> send(1us). */
ServiceModelPtr
eventLoopModel(int threads = 1)
{
    std::vector<StageConfig> stages;
    stages.push_back(
        makeStage(0, "epoll", QueueType::Epoll, true, 8, 2.0, 1.0));
    stages.push_back(
        makeStage(1, "proc", QueueType::Single, false, 0, 10.0));
    stages.push_back(
        makeStage(2, "send", QueueType::Single, false, 0, 1.0));
    PathConfig path;
    path.id = 0;
    path.name = "serve";
    path.stageIds = {0, 1, 2};
    auto model = std::make_shared<ServiceModel>(
        "svc", std::move(stages), std::vector<PathConfig>{path});
    model->setDefaultThreads(threads);
    return model;
}

struct Harness {
    explicit Harness(ServiceModelPtr model, InstanceConfig config = {})
        : sim(1),
          instance(sim, std::move(model), "svc.0", nullptr, config)
    {
        instance.setOnJobDone([this](JobPtr job) {
            completions.push_back(
                {job->id, sim.now() - job->created});
        });
    }

    JobPtr
    submit(ConnectionId conn, int path = 0)
    {
        JobPtr job = jobs.createRoot(sim.now(), 100);
        job->connectionId = conn;
        job->execPathId = path;
        JobPtr copy = job;
        instance.accept(std::move(copy));
        return job;
    }

    Simulator sim;
    MicroserviceInstance instance;
    JobFactory jobs;
    std::vector<std::pair<JobId, SimTime>> completions;
};

TEST(Instance, SingleJobTraversesAllStages)
{
    Harness h(eventLoopModel());
    h.submit(1);
    h.sim.run();
    ASSERT_EQ(h.completions.size(), 1u);
    // epoll(2+1) + proc(10) + send(1) = 14us.
    EXPECT_EQ(h.completions[0].second, 14 * kMicrosecond);
    EXPECT_EQ(h.instance.completedJobs(), 1u);
    EXPECT_EQ(h.instance.queuedJobs(), 0u);
    EXPECT_EQ(h.instance.idleThreads(), 1);
}

TEST(Instance, EpollBatchingAmortizesAcrossJobs)
{
    // Jobs 2 and 3 arrive while the worker is busy with job 1, so
    // the next poll returns both in one epoll execution whose cost
    // (2 + 2*1 us) is amortized across them.
    //   job1: epoll 0-3, proc 3-13, send 13-14
    //   epoll{2,3}: 14-18; proc2 18-28; send2 28-29; proc3 29-39;
    //   send3 39-40.
    Harness h(eventLoopModel());
    h.submit(1);
    h.sim.scheduleAt(5 * kMicrosecond, [&] {
        h.submit(2);
        h.submit(3);
    });
    h.sim.run();
    ASSERT_EQ(h.completions.size(), 3u);
    EXPECT_EQ(h.sim.now(), 40 * kMicrosecond);
    // j1: epoll+proc+send; j2/j3: shared epoll + 2x(proc+send).
    EXPECT_EQ(h.instance.executedBatches(), 8u);
    // Without batching the same work would take 3 x 14 = 42us.
}

TEST(Instance, DrainPolicyFinishesBeforeRepolling)
{
    // With drain scheduling, a job popped by epoll is fully
    // processed before the worker polls again, so job 1 completes
    // before job 2 when job 2 arrives during job 1's processing.
    Harness h(eventLoopModel());
    JobPtr first = h.submit(1);
    h.sim.scheduleAt(3 * kMicrosecond, [&] { h.submit(2); });
    h.sim.run();
    ASSERT_EQ(h.completions.size(), 2u);
    EXPECT_EQ(h.completions[0].first, first->id);
}

TEST(Instance, StageOrderPolicyStillCompletes)
{
    InstanceConfig config;
    config.policy = SchedulingPolicy::StageOrder;
    Harness h(eventLoopModel(), config);
    h.submit(1);
    h.submit(2);
    h.sim.run();
    EXPECT_EQ(h.completions.size(), 2u);
}

TEST(Instance, ThreadsProcessInParallel)
{
    // Two workers, two jobs on separate connections: processing
    // overlaps.
    Harness h(eventLoopModel(2));
    h.submit(1);
    h.submit(2);
    h.sim.run();
    ASSERT_EQ(h.completions.size(), 2u);
    // Worker A epolls both (4us), then A and B each process one.
    EXPECT_LT(h.sim.now(), 26 * kMicrosecond);
}

TEST(Instance, ThroughputScalesWithThreads)
{
    auto run_with_threads = [](int threads) {
        Harness h(eventLoopModel(threads));
        for (int i = 0; i < 200; ++i)
            h.submit(i % 32);
        h.sim.run();
        return h.sim.now();
    };
    const SimTime one = run_with_threads(1);
    const SimTime four = run_with_threads(4);
    EXPECT_LT(four * 2, one);  // at least 2x speedup with 4 threads
}

TEST(Instance, OversubscriptionAddsContextSwitch)
{
    // 2 threads on 1 core: context switch overhead applies.
    auto model = eventLoopModel(2);
    model->setContextSwitchSeconds(5e-6);
    InstanceConfig config;
    config.cores = 1;
    Harness h(std::move(model), config);
    h.submit(1);
    h.sim.run();
    // 3 batch executions x (base + 5us ctx) = 14 + 15 = 29us.
    EXPECT_EQ(h.sim.now(), 29 * kMicrosecond);
}

TEST(Instance, SimpleModelHasWorkerPerCore)
{
    std::vector<StageConfig> stages;
    stages.push_back(
        makeStage(0, "proc", QueueType::Single, false, 0, 10.0));
    PathConfig path;
    path.id = 0;
    path.stageIds = {0};
    auto model = std::make_shared<ServiceModel>(
        "leaf", std::move(stages), std::vector<PathConfig>{path});
    model->setExecutionModel(ExecutionModel::Simple);
    InstanceConfig config;
    config.cores = 3;
    Harness h(std::move(model), config);
    EXPECT_EQ(h.instance.threads(), 3);
    for (int i = 0; i < 3; ++i)
        h.submit(i);
    h.sim.run();
    EXPECT_EQ(h.sim.now(), 10 * kMicrosecond);  // all in parallel
}

TEST(Instance, DiskStageReleasesCpu)
{
    // proc(10us, cpu) -> disk(100us, disk) with 2 threads, 1 core,
    // 1 disk channel: while job A waits on disk, the core is free
    // for job B's CPU stage.
    std::vector<StageConfig> stages;
    stages.push_back(
        makeStage(0, "proc", QueueType::Single, false, 0, 10.0));
    stages.push_back(makeStage(1, "disk", QueueType::Single, false, 0,
                               100.0, 0.0, StageResource::Disk));
    PathConfig path;
    path.id = 0;
    path.stageIds = {0, 1};
    auto model = std::make_shared<ServiceModel>(
        "db", std::move(stages), std::vector<PathConfig>{path});
    model->setDefaultThreads(2);
    model->setContextSwitchSeconds(0.0);
    InstanceConfig config;
    config.cores = 1;
    config.diskChannels = 1;
    Harness h(std::move(model), config);
    h.submit(1);
    h.submit(2);
    h.sim.run();
    ASSERT_EQ(h.completions.size(), 2u);
    // Serial CPU (10+10) but disk B starts when A's disk ends:
    // A: cpu 0-10, disk 10-110.  B: cpu 10-20, disk 110-210.
    EXPECT_EQ(h.sim.now(), 210 * kMicrosecond);
}

TEST(Instance, DiskStageWithoutChannelsThrows)
{
    std::vector<StageConfig> stages;
    stages.push_back(makeStage(0, "disk", QueueType::Single, false, 0,
                               100.0, 0.0, StageResource::Disk));
    PathConfig path;
    path.id = 0;
    path.stageIds = {0};
    auto model = std::make_shared<ServiceModel>(
        "db", std::move(stages), std::vector<PathConfig>{path});
    Simulator sim;
    EXPECT_THROW(MicroserviceInstance(sim, model, "db.0", nullptr, {}),
                 std::invalid_argument);
}

TEST(Instance, SamplesPathWhenUnpinned)
{
    std::vector<StageConfig> stages;
    stages.push_back(
        makeStage(0, "fast", QueueType::Single, false, 0, 1.0));
    stages.push_back(
        makeStage(1, "slow", QueueType::Single, false, 0, 100.0));
    PathConfig fast, slow;
    fast.id = 0;
    fast.name = "fast";
    fast.stageIds = {0};
    fast.probability = 0.8;
    slow.id = 1;
    slow.name = "slow";
    slow.stageIds = {1};
    slow.probability = 0.2;
    auto model = std::make_shared<ServiceModel>(
        "mix", std::move(stages),
        std::vector<PathConfig>{fast, slow});
    Harness h(std::move(model));
    int slow_jobs = 0;
    h.instance.setOnJobDone([&](JobPtr job) {
        if (job->execPathId == 1)
            ++slow_jobs;
    });
    for (int i = 0; i < 2000; ++i) {
        JobPtr job = h.jobs.createRoot(h.sim.now(), 100);
        job->connectionId = i % 8;
        job->execPathId = -1;  // sample
        h.instance.accept(std::move(job));
    }
    h.sim.run();
    EXPECT_NEAR(slow_jobs / 2000.0, 0.2, 0.04);
}

TEST(Instance, UnblockTriggersScheduling)
{
    Harness h(eventLoopModel());
    // Block connection 1 on behalf of an unrelated root; the job
    // delivered afterwards must wait.
    h.instance.connections().block(1, 424242);
    JobPtr blocked = h.submit(1);
    h.sim.run();
    EXPECT_TRUE(h.completions.empty());
    EXPECT_EQ(h.instance.queuedJobs(), 1u);
    // Unblocking must wake the instance.
    h.instance.connections().unblock(1, 424242);
    h.sim.run();
    ASSERT_EQ(h.completions.size(), 1u);
    EXPECT_EQ(h.completions[0].first, blocked->id);
}

TEST(Instance, CpuUtilizationTracksBusyTime)
{
    Harness h(eventLoopModel());
    h.submit(1);
    h.sim.run();
    // Busy 14us of 14us elapsed on 1 core.
    EXPECT_NEAR(h.instance.cpuUtilization(), 1.0, 1e-9);
}

TEST(Instance, BatchSizeStatsRecorded)
{
    Harness h(eventLoopModel());
    h.submit(1);
    h.sim.scheduleAt(5 * kMicrosecond, [&] {
        h.submit(2);
        h.submit(3);
    });
    h.sim.run();
    // The second poll returns a batch of 2.
    EXPECT_DOUBLE_EQ(h.instance.batchSizeStats().max(), 2.0);
}

TEST(Instance, RejectsNullAndBadConfig)
{
    Simulator sim;
    EXPECT_THROW(
        MicroserviceInstance(sim, nullptr, "x", nullptr, {}),
        std::invalid_argument);
    Harness h(eventLoopModel());
    EXPECT_THROW(h.instance.accept(nullptr), std::invalid_argument);
    EXPECT_THROW(h.instance.queuedAtStage(99), std::out_of_range);
}

}  // namespace
}  // namespace uqsim
