#!/usr/bin/env python3
"""Compare a fresh BENCH_engine.json against the committed baseline.

Usage:
    check_bench.py BASELINE CANDIDATE [--tolerance 0.20]

Fails (exit 1) when:
  * a section present in the baseline is missing from the candidate,
  * a section's trace digest differs (the engine stopped being
    deterministic, or an optimisation changed simulation results),
  * a section's events/sec dropped more than --tolerance below the
    baseline (default 20%).

Throughput above the baseline never fails; CI runners are noisy in
the fast direction too, and improvements should be ratcheted in by
re-running `bench_engine` and committing the new BENCH_engine.json.
"""

import argparse
import json
import sys


def load_sections(path):
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != "uqsim-bench-engine-v1":
        raise SystemExit(f"{path}: unexpected schema {doc.get('schema')!r}")
    return {s["name"]: s for s in doc["sections"]}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional events/sec regression")
    args = parser.parse_args()

    baseline = load_sections(args.baseline)
    candidate = load_sections(args.candidate)

    failures = []
    for name, base in sorted(baseline.items()):
        got = candidate.get(name)
        if got is None:
            failures.append(f"{name}: missing from candidate run")
            continue
        section_failures = []
        if got["trace_digest"] != base["trace_digest"]:
            section_failures.append(
                f"{name}: trace digest changed "
                f"{base['trace_digest']} -> {got['trace_digest']} "
                "(simulation results differ from baseline)")
        if got["events"] != base["events"]:
            section_failures.append(
                f"{name}: event count changed "
                f"{base['events']} -> {got['events']}")
        floor = base["events_per_sec"] * (1.0 - args.tolerance)
        if got["events_per_sec"] < floor:
            section_failures.append(
                f"{name}: {got['events_per_sec']:.0f} events/s is below "
                f"the {floor:.0f} floor "
                f"(baseline {base['events_per_sec']:.0f}, "
                f"tolerance {args.tolerance:.0%})")
        if not section_failures:
            ratio = got["events_per_sec"] / base["events_per_sec"]
            print(f"ok  {name}: {got['events_per_sec']:.0f} events/s "
                  f"({ratio:.2f}x baseline), digest match")
        failures.extend(section_failures)

    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print("bench check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
