#!/usr/bin/env python3
"""Compare a fresh BENCH_engine.json against the committed baseline.

Usage:
    check_bench.py BASELINE CANDIDATE [--tolerance 0.20]
    check_bench.py BASELINE CANDIDATE --update-baseline

Fails (exit 1) when:
  * a section present in the baseline is missing from the candidate,
  * a section's trace digest differs (the engine stopped being
    deterministic, or an optimisation changed simulation results),
  * a section's events/sec dropped more than --tolerance below the
    baseline (default 20%).

Exit 2 is reserved for harness problems: a missing, unreadable,
corrupt, or wrong-schema baseline/candidate file reports a one-line
diagnostic instead of a traceback.

Throughput above the baseline never fails; CI runners are noisy in
the fast direction too, and improvements should be ratcheted in with
--update-baseline, which verifies the candidate's digests against
the baseline and then copies the candidate over it.
"""

import argparse
import json
import shutil
import sys

SCHEMA = "uqsim-bench-engine-v1"


class BenchFileError(Exception):
    """A baseline/candidate file that cannot be used at all."""


def load_sections(path):
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except FileNotFoundError:
        raise BenchFileError(
            f"{path}: no such file (run bench_engine --json first, or "
            "restore the committed baseline)") from None
    except OSError as error:
        raise BenchFileError(f"{path}: cannot read: {error}") from None
    except json.JSONDecodeError as error:
        raise BenchFileError(
            f"{path}: corrupt JSON (line {error.lineno}, column "
            f"{error.colno}): {error.msg}") from None
    if not isinstance(doc, dict):
        raise BenchFileError(f"{path}: expected a JSON object at top level")
    if doc.get("schema") != SCHEMA:
        raise BenchFileError(
            f"{path}: unexpected schema {doc.get('schema')!r} "
            f"(want {SCHEMA!r})")
    sections = doc.get("sections")
    if not isinstance(sections, list):
        raise BenchFileError(f"{path}: missing or malformed 'sections' list")
    by_name = {}
    for index, section in enumerate(sections):
        if not isinstance(section, dict) or "name" not in section:
            raise BenchFileError(
                f"{path}: sections[{index}] has no 'name' field")
        for field in ("trace_digest", "events", "events_per_sec"):
            if field not in section:
                raise BenchFileError(
                    f"{path}: section {section['name']!r} is missing "
                    f"{field!r}")
        by_name[section["name"]] = section
    if not by_name:
        raise BenchFileError(f"{path}: no benchmark sections")
    return by_name


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("candidate")
    parser.add_argument("--tolerance", type=float, default=0.20,
                        help="allowed fractional events/sec regression")
    parser.add_argument("--update-baseline", action="store_true",
                        help="after checking digests (throughput is "
                             "ignored), copy the candidate over the "
                             "baseline to ratchet in a new reference")
    args = parser.parse_args()

    try:
        baseline = load_sections(args.baseline)
        candidate = load_sections(args.candidate)
    except BenchFileError as error:
        print(f"ERROR {error}", file=sys.stderr)
        return 2

    failures = []
    for name, base in sorted(baseline.items()):
        got = candidate.get(name)
        if got is None:
            failures.append(f"{name}: missing from candidate run")
            continue
        section_failures = []
        if got["trace_digest"] != base["trace_digest"]:
            section_failures.append(
                f"{name}: trace digest changed "
                f"{base['trace_digest']} -> {got['trace_digest']} "
                "(simulation results differ from baseline)")
        if got["events"] != base["events"]:
            section_failures.append(
                f"{name}: event count changed "
                f"{base['events']} -> {got['events']}")
        floor = base["events_per_sec"] * (1.0 - args.tolerance)
        if not args.update_baseline and got["events_per_sec"] < floor:
            section_failures.append(
                f"{name}: {got['events_per_sec']:.0f} events/s is below "
                f"the {floor:.0f} floor "
                f"(baseline {base['events_per_sec']:.0f}, "
                f"tolerance {args.tolerance:.0%})")
        if not section_failures:
            ratio = got["events_per_sec"] / base["events_per_sec"]
            print(f"ok  {name}: {got['events_per_sec']:.0f} events/s "
                  f"({ratio:.2f}x baseline), digest match")
        failures.extend(section_failures)

    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1

    if args.update_baseline:
        try:
            shutil.copyfile(args.candidate, args.baseline)
        except OSError as error:
            print(f"ERROR cannot update baseline: {error}", file=sys.stderr)
            return 2
        print(f"baseline updated: {args.candidate} -> {args.baseline}")
        return 0

    print("bench check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
